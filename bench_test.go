// Benchmarks regenerating every table and figure of the paper's evaluation
// (§6) at bench scale, plus micro-benchmarks of the pipeline stages and the
// ablation studies of DESIGN.md. Figure-level benches report the measured
// series via b.ReportMetric so `go test -bench` output doubles as a compact
// experiment log; cmd/experiments prints the full tables at any scale.
package rfidclean_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	rfidclean "repro"
	"repro/internal/constraints"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiment"
	"repro/internal/prior"
	"repro/internal/query"
	"repro/internal/stats"
)

var (
	benchOnce sync.Once
	syn1      *dataset.Dataset
	syn2      *dataset.Dataset
)

func benchDatasets(b *testing.B) (*dataset.Dataset, *dataset.Dataset) {
	b.Helper()
	benchOnce.Do(func() {
		var err error
		if syn1, err = dataset.Build("SYN1", dataset.SYN1()); err != nil {
			b.Fatal(err)
		}
		if syn2, err = dataset.Build("SYN2", dataset.SYN2()); err != nil {
			b.Fatal(err)
		}
	})
	if syn1 == nil || syn2 == nil {
		b.Fatal("dataset construction failed earlier")
	}
	return syn1, syn2
}

// benchInstance returns one fixed instance of the given duration.
func benchInstance(b *testing.B, d *dataset.Dataset, duration int) dataset.Instance {
	b.Helper()
	insts, err := d.Generate(duration, 1, 42)
	if err != nil {
		b.Fatal(err)
	}
	return insts[0]
}

func buildFor(b *testing.B, d *dataset.Dataset, inst dataset.Instance, sel dataset.Selection) *core.Graph {
	b.Helper()
	ls, err := d.Prior.LSequence(inst.Readings)
	if err != nil {
		b.Fatal(err)
	}
	g, err := core.Build(ls, d.Constraints(sel), &core.Options{EndLatency: constraints.LenientEnd})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// --- Micro-benchmarks: the pipeline stages -------------------------------

// BenchmarkBuildCTGraph measures Algorithm 1 on a fixed 5-minute SYN1
// instance under each constraint set (the per-point cost behind Fig. 8(a)).
func BenchmarkBuildCTGraph(b *testing.B) {
	d, _ := benchDatasets(b)
	inst := benchInstance(b, d, 300)
	ls, err := d.Prior.LSequence(inst.Readings)
	if err != nil {
		b.Fatal(err)
	}
	for _, sel := range dataset.Selections {
		ic := d.Constraints(sel)
		b.Run(sel.String(), func(b *testing.B) {
			var nodes int
			for i := 0; i < b.N; i++ {
				g, err := core.Build(ls, ic, &core.Options{EndLatency: constraints.LenientEnd})
				if err != nil {
					b.Fatal(err)
				}
				nodes = g.Stats().Nodes
			}
			b.ReportMetric(float64(nodes), "nodes")
		})
	}
}

// BenchmarkLSequence measures reading interpretation through p*(l|R).
func BenchmarkLSequence(b *testing.B) {
	d, _ := benchDatasets(b)
	inst := benchInstance(b, d, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Prior.LSequence(inst.Readings); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStayQuery measures one stay query on a cleaned 5-minute graph.
func BenchmarkStayQuery(b *testing.B) {
	d, _ := benchDatasets(b)
	inst := benchInstance(b, d, 300)
	for _, sel := range dataset.Selections {
		g := buildFor(b, d, inst, sel)
		b.Run(sel.String(), func(b *testing.B) {
			rng := stats.NewRNG(1)
			for i := 0; i < b.N; i++ {
				eng := query.NewEngine(g, d.Plan.NumLocations())
				if _, err := eng.Stay(rng.Intn(300)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTrajectoryQuery measures one pattern query on a cleaned graph.
func BenchmarkTrajectoryQuery(b *testing.B) {
	d, _ := benchDatasets(b)
	inst := benchInstance(b, d, 300)
	locs := make([]int, d.Plan.NumLocations())
	for i := range locs {
		locs[i] = i
	}
	for _, sel := range dataset.Selections {
		g := buildFor(b, d, inst, sel)
		eng := query.NewEngine(g, d.Plan.NumLocations())
		b.Run(sel.String(), func(b *testing.B) {
			rng := stats.NewRNG(2)
			for i := 0; i < b.N; i++ {
				pat := query.RandomPattern(rng, locs, 3)
				if _, err := eng.Trajectory(pat); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSampleAndViterbi measures trajectory extraction primitives.
func BenchmarkSampleAndViterbi(b *testing.B) {
	d, _ := benchDatasets(b)
	g := buildFor(b, d, benchInstance(b, d, 300), dataset.SelDULT)
	b.Run("Sample", func(b *testing.B) {
		rng := stats.NewRNG(3)
		for i := 0; i < b.N; i++ {
			if g.Sample(rng) == nil {
				b.Fatal("sample failed")
			}
		}
	})
	b.Run("Viterbi", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if locs, _ := g.MostProbable(); locs == nil {
				b.Fatal("viterbi failed")
			}
		}
	})
	b.Run("Marginals", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.Marginals(d.Plan.NumLocations())
		}
	})
}

// BenchmarkPriorDist measures p*(l|R) evaluation with a cold cache: a fresh
// model each iteration, so the cell-sum formula itself is timed.
func BenchmarkPriorDist(b *testing.B) {
	d, _ := benchDatasets(b)
	inst := benchInstance(b, d, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := prior.New(d.Learned, prior.Options{})
		m.Dist(inst.Readings[i%len(inst.Readings)].Readers)
	}
}

// --- Figure-level benchmarks (one per table/figure) -----------------------

// BenchmarkFig8aCleaningTimeSYN1 regenerates Fig. 8(a): average cleaning
// time vs duration on SYN1 for CTG(DU), CTG(DU+LT), CTG(DU+LT+TT).
func BenchmarkFig8aCleaningTimeSYN1(b *testing.B) {
	d, _ := benchDatasets(b)
	benchCleaning(b, d)
}

// BenchmarkFig8bCleaningTimeSYN2 regenerates Fig. 8(b) on SYN2.
func BenchmarkFig8bCleaningTimeSYN2(b *testing.B) {
	_, d := benchDatasets(b)
	benchCleaning(b, d)
}

func benchCleaning(b *testing.B, d *dataset.Dataset) {
	p := experiment.Quick()
	for i := 0; i < b.N; i++ {
		results, err := experiment.CleaningCost(d, p)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range results {
				b.ReportMetric(r.MeanSeconds,
					fmt.Sprintf("s/CTG(%s)@%d", r.Selection, r.Duration))
			}
		}
	}
}

// BenchmarkFig8cQueryTime regenerates Fig. 8(c): average query time vs
// duration on both datasets.
func BenchmarkFig8cQueryTime(b *testing.B) {
	d1, d2 := benchDatasets(b)
	p := experiment.Quick()
	for i := 0; i < b.N; i++ {
		for _, d := range []*dataset.Dataset{d1, d2} {
			results, err := experiment.QueryCost(d, p)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				for _, r := range results {
					if r.Duration == p.Durations[len(p.Durations)-1] {
						b.ReportMetric(r.MeanStaySeconds, fmt.Sprintf("s/stay-%s-%s", d.Name, r.Selection))
					}
				}
			}
		}
	}
}

// BenchmarkFig9aStayAccuracy regenerates Fig. 9(a): average stay-query
// accuracy per dataset and constraint set (plus the prior baseline).
func BenchmarkFig9aStayAccuracy(b *testing.B) {
	benchAccuracy(b, func(b *testing.B, r experiment.AccuracyResult) {
		b.ReportMetric(r.Stay, fmt.Sprintf("acc/%s-%s", r.Dataset, r.Selection))
		b.ReportMetric(r.PriorStay, fmt.Sprintf("acc/%s-prior", r.Dataset))
	})
}

// BenchmarkFig9bTrajectoryAccuracy regenerates Fig. 9(b): average
// trajectory-query accuracy per dataset and constraint set.
func BenchmarkFig9bTrajectoryAccuracy(b *testing.B) {
	benchAccuracy(b, func(b *testing.B, r experiment.AccuracyResult) {
		b.ReportMetric(r.Traj, fmt.Sprintf("acc/%s-%s", r.Dataset, r.Selection))
	})
}

func benchAccuracy(b *testing.B, report func(*testing.B, experiment.AccuracyResult)) {
	d1, d2 := benchDatasets(b)
	p := experiment.Quick()
	for i := 0; i < b.N; i++ {
		for _, d := range []*dataset.Dataset{d1, d2} {
			results, err := experiment.Accuracy(d, p)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				for _, r := range results {
					report(b, r)
				}
			}
		}
	}
}

// BenchmarkFig9cAccuracyVsQueryLength regenerates Fig. 9(c): trajectory
// query accuracy vs the number of anchors, on SYN2.
func BenchmarkFig9cAccuracyVsQueryLength(b *testing.B) {
	_, d2 := benchDatasets(b)
	p := experiment.Quick()
	for i := 0; i < b.N; i++ {
		_, byLen, err := experiment.AccuracyWithLengths(d2, p)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range byLen {
				if r.Selection == dataset.SelDULTTT {
					b.ReportMetric(r.Traj, fmt.Sprintf("acc/anchors-%d", r.Anchors))
				}
			}
		}
	}
}

// BenchmarkGraphSize regenerates the §6.7 size comparison: ct-graph memory
// at the longest duration under DU vs DU+LT+TT.
func BenchmarkGraphSize(b *testing.B) {
	d, _ := benchDatasets(b)
	p := experiment.Quick()
	for i := 0; i < b.N; i++ {
		results, err := experiment.CleaningCost(d, p)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			maxDur := p.Durations[len(p.Durations)-1]
			for _, r := range results {
				if r.Duration == maxDur {
					b.ReportMetric(r.MeanBytes/1e6, fmt.Sprintf("MB/%s", r.Selection))
				}
			}
		}
	}
}

// --- Ablation benchmarks --------------------------------------------------

// BenchmarkAblationPriorFormula compares the paper's p*(l|R) formula against
// the full detection likelihood (A1).
func BenchmarkAblationPriorFormula(b *testing.B) {
	p := experiment.Quick()
	for i := 0; i < b.N; i++ {
		results, err := experiment.PriorFormulaAblation(dataset.SYN1(), "SYN1", p)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range results {
				b.ReportMetric(r.Stay, fmt.Sprintf("acc/%s", r.Formula))
				b.ReportMetric(r.Cands, fmt.Sprintf("cands/%s", r.Formula))
			}
		}
	}
}

// BenchmarkAblationEndLatency compares strict (Definition 2) and lenient
// (Algorithm 1) end-of-window semantics (A2).
func BenchmarkAblationEndLatency(b *testing.B) {
	d, _ := benchDatasets(b)
	p := experiment.Quick()
	for i := 0; i < b.N; i++ {
		results, err := experiment.EndLatencyAblation(d, p)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range results {
				b.ReportMetric(r.MeanNodes, fmt.Sprintf("nodes/%s", r.Mode))
			}
		}
	}
}

// BenchmarkAblationMinProb compares exact candidate sets against ε-pruned
// ones (A3).
func BenchmarkAblationMinProb(b *testing.B) {
	p := experiment.Quick()
	for i := 0; i < b.N; i++ {
		results, err := experiment.MinProbAblation(dataset.SYN1(), "SYN1", p, []float64{0, 0.05})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range results {
				b.ReportMetric(r.MeanNodes, fmt.Sprintf("nodes/min%.2g", r.MinProb))
				b.ReportMetric(r.Stay, fmt.Sprintf("acc/min%.2g", r.MinProb))
			}
		}
	}
}

// BenchmarkBaselineComparison measures the cleaning methods side by side:
// raw prior, the SMURF-style smoothing baseline, and conditioning.
func BenchmarkBaselineComparison(b *testing.B) {
	d, _ := benchDatasets(b)
	p := experiment.Quick()
	for i := 0; i < b.N; i++ {
		results, err := experiment.BaselineComparison(d, p)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range results {
				// Metric units must not contain whitespace.
				unit := strings.ReplaceAll(r.Method, " ", "")
				b.ReportMetric(r.Stay, "acc/"+unit)
			}
		}
	}
}

// BenchmarkAblationMapSize measures §6.5's map-size effect with uncapped TT
// horizons (A5).
func BenchmarkAblationMapSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiment.MapSizeAblation(120, 1, []int{0})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range results {
				b.ReportMetric(r.MeanSeconds, "s/"+r.Dataset)
			}
		}
	}
}

// BenchmarkOracleVsCTGraph measures the naive enumeration baseline against
// Algorithm 1 on short windows (A4 — the introduction's blow-up argument).
func BenchmarkOracleVsCTGraph(b *testing.B) {
	d, _ := benchDatasets(b)
	for i := 0; i < b.N; i++ {
		results, err := experiment.OracleVsCTGraph(d, []int{8, 10, 12}, 2, 1<<22, constraints.LenientEnd)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range results {
				b.ReportMetric(r.OracleSeconds, fmt.Sprintf("s/oracle@%d", r.Duration))
				b.ReportMetric(r.GraphSeconds, fmt.Sprintf("s/ctg@%d", r.Duration))
			}
		}
	}
}

// --- Streaming sessions: incremental smoothing vs full rebuild -----------

// benchSession returns the demo system, its inferred constraints, and a
// generated reading sequence of the given duration — the fixture behind the
// incremental-vs-full smoothing comparison.
func benchSession(b *testing.B, duration int) (*rfidclean.System, *rfidclean.ConstraintSet, rfidclean.ReadingSequence) {
	b.Helper()
	sys := demoSystem(b)
	ic, err := sys.InferConstraints(2, 5, 0)
	if err != nil {
		b.Fatal(err)
	}
	rng := rfidclean.NewRNG(11)
	truth, err := rfidclean.GenerateTrajectory(sys.Plan, rfidclean.NewGeneratorConfig(duration), rng)
	if err != nil {
		b.Fatal(err)
	}
	return sys, ic, rfidclean.GenerateReadings(truth, sys.Truth, rng)
}

// BenchmarkSessionSmoothIncremental measures the streaming server's fast
// path end to end: a session that already observed 500 readings takes one
// more and re-smooths through its live BuildState (SmoothState). Only the
// smoothing is timed — Observe runs at ingestion, when the reading is
// POSTed, not when smoothing is requested. Pair with
// BenchmarkSessionSmoothFull, the fallback this path replaces.
func BenchmarkSessionSmoothIncremental(b *testing.B) {
	const warm = 500
	sys, ic, readings := benchSession(b, warm+1)
	opts := &rfidclean.BuildOptions{EndLatency: rfidclean.LenientEnd}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := rfidclean.NewBuildState(ic)
		for _, r := range readings[:warm] {
			cands, err := sys.Candidates(r.Readers)
			if err != nil {
				b.Fatal(err)
			}
			if err := st.Observe(cands); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := sys.SmoothState(st, opts); err != nil {
			b.Fatal(err)
		}
		cands, err := sys.Candidates(readings[warm].Readers)
		if err != nil {
			b.Fatal(err)
		}
		if err := st.Observe(cands); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := sys.SmoothState(st, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionSmoothFull measures the fallback the incremental path
// replaces: re-cleaning the same 501-reading buffer from scratch (l-sequence
// derivation plus Algorithm 1), as the server does when a recalibration
// invalidated the session's constraint set.
func BenchmarkSessionSmoothFull(b *testing.B) {
	sys, ic, readings := benchSession(b, 501)
	opts := &rfidclean.BuildOptions{EndLatency: rfidclean.LenientEnd}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Clean(readings, ic, opts); err != nil {
			b.Fatal(err)
		}
	}
}
