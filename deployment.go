package rfidclean

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/floorplan"
)

// Deployment is a serializable description of an RFID installation: the
// map, the reader placement, the detection model and the calibration
// parameters. It is the unit of configuration the CLI tools exchange, so a
// deployment authored once (or exported from a built-in dataset) can be
// cleaned against repeatedly.
type Deployment struct {
	// Name labels the deployment.
	Name string
	// Plan is the building map.
	Plan *Plan
	// Readers is the antenna placement.
	Readers []Reader
	// Detection is the three-state antenna model assumed for calibration
	// and synthetic generation.
	Detection ThreeState
	// CellSize is the grid cell side in meters (§6.2 uses 0.5).
	CellSize float64
	// CalibrationSamples is the number of samples per cell when learning
	// p*(l|R) (§6.2 uses 30).
	CalibrationSamples int
	// Seed drives the calibration sampling.
	Seed uint64
}

// deploymentJSON is the wire form; the plan is nested in floorplan's format.
type deploymentJSON struct {
	Name               string          `json:"name"`
	Plan               json.RawMessage `json:"plan"`
	Readers            []Reader        `json:"readers"`
	Detection          ThreeState      `json:"detection"`
	CellSize           float64         `json:"cellSize"`
	CalibrationSamples int             `json:"calibrationSamples"`
	Seed               uint64          `json:"seed"`
}

// Encode writes the deployment as JSON.
func (d *Deployment) Encode(w io.Writer) error {
	if d.Plan == nil {
		return fmt.Errorf("rfidclean: deployment has no plan")
	}
	var plan bytes.Buffer
	if err := d.Plan.Encode(&plan); err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(deploymentJSON{
		Name:               d.Name,
		Plan:               json.RawMessage(bytes.TrimSpace(plan.Bytes())),
		Readers:            d.Readers,
		Detection:          d.Detection,
		CellSize:           d.CellSize,
		CalibrationSamples: d.CalibrationSamples,
		Seed:               d.Seed,
	})
}

// EncodeBytes returns Encode's output as a trimmed byte slice, convenient
// for embedding a deployment as a JSON value (json.RawMessage) inside a
// larger document. The encoding is deterministic for a given deployment, so
// re-encoding a decoded deployment reproduces the same bytes — the property
// the server's persistence layer relies on for stable snapshot files.
func (d *Deployment) EncodeBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := d.Encode(&buf); err != nil {
		return nil, err
	}
	return bytes.TrimSpace(buf.Bytes()), nil
}

// DecodeDeployment reads a deployment written by Encode (or hand-authored).
func DecodeDeployment(r io.Reader) (*Deployment, error) {
	var in deploymentJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("rfidclean: decoding deployment: %w", err)
	}
	plan, err := floorplan.Decode(bytes.NewReader(in.Plan))
	if err != nil {
		return nil, err
	}
	d := &Deployment{
		Name:               in.Name,
		Plan:               plan,
		Readers:            in.Readers,
		Detection:          in.Detection,
		CellSize:           in.CellSize,
		CalibrationSamples: in.CalibrationSamples,
		Seed:               in.Seed,
	}
	if err := d.validate(); err != nil {
		return nil, err
	}
	return d, nil
}

func (d *Deployment) validate() error {
	if len(d.Readers) == 0 {
		return fmt.Errorf("rfidclean: deployment has no readers")
	}
	seen := make(map[int]bool, len(d.Readers))
	for _, r := range d.Readers {
		if seen[r.ID] {
			return fmt.Errorf("rfidclean: duplicate reader ID %d", r.ID)
		}
		seen[r.ID] = true
		if r.Floor < 0 || r.Floor >= d.Plan.NumFloors() {
			return fmt.Errorf("rfidclean: reader %d on floor %d; plan has %d floors", r.ID, r.Floor, d.Plan.NumFloors())
		}
	}
	if d.CellSize <= 0 {
		return fmt.Errorf("rfidclean: deployment cell size must be positive")
	}
	if d.CalibrationSamples <= 0 {
		return fmt.Errorf("rfidclean: deployment needs at least one calibration sample per cell")
	}
	return nil
}

// System instantiates the deployment: it builds the cell space and the
// ground-truth detection matrix and calibrates the prior from the
// deployment's seed, yielding a ready-to-clean System.
func (d *Deployment) System() (*System, error) {
	if err := d.validate(); err != nil {
		return nil, err
	}
	sys, err := NewSystem(d.Plan, d.Readers, d.Detection, d.CellSize)
	if err != nil {
		return nil, err
	}
	sys.CalibratePrior(d.CalibrationSamples, NewRNG(d.Seed))
	return sys, nil
}
