// Command supplychain demonstrates group cleaning — the supply-chain
// correlation the paper's conclusions (§8) point to as future work. A pallet
// carries several tagged items through a warehouse; the items move together,
// so their (independently noisy) reading streams can be fused into a single,
// sharper joint interpretation before conditioning.
//
// The example cleans one item's stream alone and the whole pallet jointly,
// and compares both against the ground truth.
package main

import (
	"fmt"
	"log"

	rfidclean "repro"
)

func main() {
	plan, readers := buildWarehouse()
	sys, err := rfidclean.NewSystem(plan, readers, rfidclean.DefaultThreeState(), 0.5)
	if err != nil {
		log.Fatal(err)
	}
	sys.CalibratePrior(30, rfidclean.NewRNG(8))
	// Forklifts move at up to 2.5 m/s; a pallet parked in a bay stays at
	// least 10 s.
	du := rfidclean.InferDU(sys.Plan)
	ic := du.Clone()
	ic.Merge(rfidclean.InferLT(sys.Plan, 10, rfidclean.Corridor))
	tt, err := rfidclean.InferTT(sys.Plan, 2.5, 20)
	if err != nil {
		log.Fatal(err)
	}
	ic.Merge(tt)

	// One pallet, four tagged items, 5 minutes of movement.
	const duration = 300
	const items = 4
	rng := rfidclean.NewRNG(2014)
	cfg := rfidclean.NewGeneratorConfig(duration)
	cfg.MaxSpeed = 2.5
	truth, err := rfidclean.GenerateTrajectory(sys.Plan, cfg, rng)
	if err != nil {
		log.Fatal(err)
	}
	var group []rfidclean.ReadingSequence
	for i := 0; i < items; i++ {
		group = append(group, rfidclean.GenerateReadings(truth, sys.Truth, rng.Split()))
	}

	opts := &rfidclean.BuildOptions{EndLatency: rfidclean.LenientEnd}
	single, err := sys.Clean(group[0], ic, opts)
	if err != nil {
		log.Fatal(err)
	}
	joint, err := sys.CleanGroup(group, ic, opts)
	if err != nil {
		log.Fatal(err)
	}

	locs := truth.Locations()
	score := func(c *rfidclean.Cleaned) (acc float64, top1 int) {
		for tau := 0; tau < duration; tau++ {
			dist, err := c.StayDistribution(tau)
			if err != nil {
				log.Fatal(err)
			}
			acc += dist[locs[tau]]
			best, bestP := -1, -1.0
			for l, p := range dist {
				if p > bestP {
					best, bestP = l, p
				}
			}
			if best == locs[tau] {
				top1++
			}
		}
		return acc / duration, top1
	}
	sAcc, sTop := score(single)
	jAcc, jTop := score(joint)
	fmt.Printf("single item : stay accuracy %.3f, top-1 %d/%d\n", sAcc, sTop, duration)
	fmt.Printf("pallet (x%d): stay accuracy %.3f, top-1 %d/%d\n", items, jAcc, jTop, duration)
	fmt.Printf("graph sizes : single %d nodes, joint %d nodes\n",
		single.Stats().Nodes, joint.Stats().Nodes)

	// Where did the pallet actually dwell? Expected occupancy per bay.
	fmt.Println("\nexpected pallet occupancy (joint cleaning):")
	occ, err := joint.ExpectedOccupancy()
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range plan.Locations() {
		if occ[l.ID] >= 5 {
			fmt.Printf("  %-10s %5.1f s\n", l.Name, occ[l.ID])
		}
	}
}

// buildWarehouse lays out a warehouse: a central aisle with storage bays on
// both sides and a loading dock.
func buildWarehouse() (*rfidclean.Plan, []rfidclean.Reader) {
	b := rfidclean.NewMapBuilder()
	aisle := b.AddLocation("aisle", rfidclean.Corridor, 0, rfidclean.RectWH(0, 5, 24, 4))
	dock := b.AddLocation("dock", rfidclean.Room, 0, rfidclean.RectWH(0, 0, 6, 5))
	b.AddDoor(aisle, dock, rfidclean.Pt(3, 5), 2)
	var readers []rfidclean.Reader
	id := 0
	add := func(name string, p rfidclean.Point) {
		readers = append(readers, rfidclean.Reader{ID: id, Name: name, Floor: 0, Pos: p})
		id++
	}
	add("r-dock", rfidclean.Pt(3, 2.5))
	for i := 0; i < 4; i++ {
		x := float64(i * 6)
		bay := b.AddLocation(fmt.Sprintf("bay-%c", 'A'+i), rfidclean.Room, 0, rfidclean.RectWH(x, 9, 6, 5))
		b.AddDoor(aisle, bay, rfidclean.Pt(x+3, 9), 2)
		add(fmt.Sprintf("r-bay-%c", 'A'+i), rfidclean.Pt(x+3, 11.5))
	}
	for _, x := range []float64{4, 12, 20} {
		add(fmt.Sprintf("r-aisle-%d", id), rfidclean.Pt(x, 7))
	}
	plan, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return plan, readers
}
