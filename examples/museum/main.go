// Command museum demonstrates trajectory-pattern analytics over cleaned
// RFID data — the paper's motivating museum scenario: visitors carry RFID
// tags, rooms carry readers, and the curator wants to know which exhibits a
// visitor dwelt at (e.g. to personalize the information offered later in the
// visit), even though the raw readings are ambiguous and gappy.
package main

import (
	"fmt"
	"log"

	rfidclean "repro"
)

func main() {
	// A small museum: an entrance hall feeding three galleries in a row,
	// plus a gift shop reachable from the hall.
	b := rfidclean.NewMapBuilder()
	hall := b.AddLocation("hall", rfidclean.Corridor, 0, rfidclean.RectWH(0, 0, 24, 4))
	egypt := b.AddLocation("egyptian", rfidclean.Room, 0, rfidclean.RectWH(0, 4, 8, 6))
	modern := b.AddLocation("modern", rfidclean.Room, 0, rfidclean.RectWH(8, 4, 8, 6))
	flemish := b.AddLocation("flemish", rfidclean.Room, 0, rfidclean.RectWH(16, 4, 8, 6))
	shop := b.AddLocation("giftshop", rfidclean.Room, 0, rfidclean.RectWH(0, -5, 8, 5))
	b.AddDoor(hall, egypt, rfidclean.Pt(4, 4), 1.5)
	b.AddDoor(hall, modern, rfidclean.Pt(12, 4), 1.5)
	b.AddDoor(hall, flemish, rfidclean.Pt(20, 4), 1.5)
	b.AddDoor(hall, shop, rfidclean.Pt(4, 0), 1.5)
	// Galleries are also connected to each other directly.
	b.AddDoor(egypt, modern, rfidclean.Pt(8, 7), 1.2)
	b.AddDoor(modern, flemish, rfidclean.Pt(16, 7), 1.2)
	plan, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	readers := []rfidclean.Reader{
		{ID: 0, Name: "r-egypt", Floor: 0, Pos: rfidclean.Pt(4, 7)},
		{ID: 1, Name: "r-modern", Floor: 0, Pos: rfidclean.Pt(12, 7)},
		{ID: 2, Name: "r-flemish", Floor: 0, Pos: rfidclean.Pt(20, 7)},
		{ID: 3, Name: "r-shop", Floor: 0, Pos: rfidclean.Pt(4, -2.5)},
		{ID: 4, Name: "r-hall-w", Floor: 0, Pos: rfidclean.Pt(6, 2)},
		{ID: 5, Name: "r-hall-e", Floor: 0, Pos: rfidclean.Pt(18, 2)},
	}
	sys, err := rfidclean.NewSystem(plan, readers, rfidclean.DefaultThreeState(), 0.5)
	if err != nil {
		log.Fatal(err)
	}
	sys.CalibratePrior(30, rfidclean.NewRNG(2))

	// Visitors walk at most 1.5 m/s inside a museum, and a stop shorter
	// than 10 s in a gallery is not a meaningful visit — exactly the kind
	// of latency constraint §3 describes for cleaning out flicker.
	ic, err := sys.InferConstraints(1.5, 10, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Simulate a 10-minute visit.
	rng := rfidclean.NewRNG(2024)
	cfg := rfidclean.NewGeneratorConfig(600)
	cfg.MaxSpeed = 1.5
	truth, err := rfidclean.GenerateTrajectory(sys.Plan, cfg, rng)
	if err != nil {
		log.Fatal(err)
	}
	readings := rfidclean.GenerateReadings(truth, sys.Truth, rng)

	// How gappy is the raw data?
	misses := 0
	for _, r := range readings {
		if r.Readers.IsEmpty() {
			misses++
		}
	}
	fmt.Printf("raw readings: %d timestamps, %d missed reads (%.0f%%)\n",
		len(readings), misses, 100*float64(misses)/float64(len(readings)))

	cleaned, err := sys.Clean(readings, ic, &rfidclean.BuildOptions{EndLatency: rfidclean.LenientEnd})
	if err != nil {
		log.Fatal(err)
	}

	// Which galleries did the visitor spend real time in? Evaluate one
	// pattern query per gallery: "at some point, at least 30 consecutive
	// seconds there".
	fmt.Println("\ndwell analysis (>= 30 s):")
	for _, room := range []string{"egyptian", "modern", "flemish", "giftshop"} {
		p, err := cleaned.Match(fmt.Sprintf("? %s[30] ?", room))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  P(dwelt in %-9s) = %.3f\n", room, p)
	}

	// Ordering questions: did they do Egyptian before Flemish?
	pOrder, err := cleaned.Match("? egyptian ? flemish ?")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nP(visited egyptian, later flemish) = %.3f\n", pOrder)

	// Ground truth for comparison: total seconds per location.
	seconds := map[string]int{}
	for _, pt := range truth.Points {
		seconds[plan.Location(pt.Loc).Name]++
	}
	fmt.Println("\nground truth dwell times:")
	for _, room := range []string{"hall", "egyptian", "modern", "flemish", "giftshop"} {
		fmt.Printf("  %-9s %4d s\n", room, seconds[room])
	}
}
