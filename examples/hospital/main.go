// Command hospital demonstrates the downstream primitives the ct-graph
// enables beyond marginal queries: Viterbi decoding (the single best
// explanation of the readings) and weighted sampling of valid trajectories
// (the §7 future-work item), here used for Monte-Carlo utilization analysis
// of a tracked asset (a wheelchair) across two hospital floors.
package main

import (
	"fmt"
	"log"
	"sort"

	rfidclean "repro"
)

func main() {
	plan, readers := buildHospital()
	sys, err := rfidclean.NewSystem(plan, readers, rfidclean.DefaultThreeState(), 0.5)
	if err != nil {
		log.Fatal(err)
	}
	sys.CalibratePrior(30, rfidclean.NewRNG(11))
	// Porters push wheelchairs at up to 1.8 m/s; cap TT horizons at 20 s
	// to keep the graph small across the two floors.
	ic, err := sys.InferConstraints(1.8, 5, 20)
	if err != nil {
		log.Fatal(err)
	}

	rng := rfidclean.NewRNG(31)
	cfg := rfidclean.NewGeneratorConfig(480)
	cfg.MaxSpeed = 1.8
	truth, err := rfidclean.GenerateTrajectory(sys.Plan, cfg, rng)
	if err != nil {
		log.Fatal(err)
	}
	readings := rfidclean.GenerateReadings(truth, sys.Truth, rng)

	cleaned, err := sys.Clean(readings, ic, &rfidclean.BuildOptions{EndLatency: rfidclean.LenientEnd})
	if err != nil {
		log.Fatal(err)
	}

	// 1. Viterbi: the single most probable history of the asset.
	best, p := cleaned.MostProbable()
	fmt.Printf("most probable history (p=%.3g): ", p)
	printRuns(cleaned, best)

	// 2. Monte-Carlo utilization: sample valid trajectories and estimate
	// the fraction of time spent per ward. Because every sample comes
	// from the conditioned distribution, no sample is ever rejected.
	const samples = 2000
	seconds := make([]float64, sys.Plan.NumLocations())
	for s := 0; s < samples; s++ {
		for _, loc := range cleaned.Sample(rng) {
			seconds[loc]++
		}
	}
	type row struct {
		name string
		frac float64
	}
	var rows []row
	total := float64(samples * cleaned.Duration())
	for id, sec := range seconds {
		if sec > 0 {
			rows = append(rows, row{plan.Location(id).Name, sec / total})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].frac > rows[j].frac })
	fmt.Println("\nestimated utilization (Monte-Carlo over the conditioned distribution):")
	for _, r := range rows {
		if r.frac < 0.01 {
			continue
		}
		fmt.Printf("  %-12s %5.1f%%\n", r.name, 100*r.frac)
	}

	// Ground truth for comparison.
	fmt.Println("\nground truth:")
	truthSec := map[string]int{}
	for _, pt := range truth.Points {
		truthSec[plan.Location(pt.Loc).Name]++
	}
	var names []string
	for n := range truthSec {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return truthSec[names[i]] > truthSec[names[j]] })
	for _, n := range names {
		fmt.Printf("  %-12s %5.1f%%\n", n, 100*float64(truthSec[n])/float64(truth.Duration()))
	}
}

// printRuns renders a trajectory as location runs ("ward-a x120 -> ...").
func printRuns(c interface{ LocationName(int) string }, locs []int) {
	start := 0
	for i := 1; i <= len(locs); i++ {
		if i == len(locs) || locs[i] != locs[start] {
			fmt.Printf("%s x%d", c.LocationName(locs[start]), i-start)
			if i < len(locs) {
				fmt.Print(" -> ")
			}
			start = i
		}
	}
	fmt.Println()
}

// buildHospital lays out two floors: wards along a corridor, a stairwell
// linking them.
func buildHospital() (*rfidclean.Plan, []rfidclean.Reader) {
	b := rfidclean.NewMapBuilder()
	var readers []rfidclean.Reader
	id := 0
	addReader := func(name string, floor int, p rfidclean.Point) {
		readers = append(readers, rfidclean.Reader{ID: id, Name: name, Floor: floor, Pos: p})
		id++
	}
	prevStairs := -1
	wardNames := [][]string{
		{"ward-a", "ward-b", "radiology"},
		{"ward-c", "ward-d", "surgery"},
	}
	for f := 0; f < 2; f++ {
		cor := b.AddLocation(fmt.Sprintf("corridor-%d", f), rfidclean.Corridor, f, rfidclean.RectWH(0, 0, 18, 3))
		for i, name := range wardNames[f] {
			x := float64(i * 5)
			room := b.AddLocation(name, rfidclean.Room, f, rfidclean.RectWH(x, 3, 5, 5))
			b.AddDoor(cor, room, rfidclean.Pt(x+2.5, 3), 1.4)
			addReader("r-"+name, f, rfidclean.Pt(x+2.5, 5.5))
		}
		st := b.AddLocation(fmt.Sprintf("stairs-%d", f), rfidclean.Stairwell, f, rfidclean.RectWH(15, 3, 3, 5))
		b.AddDoor(cor, st, rfidclean.Pt(16.5, 3), 1.2)
		addReader(fmt.Sprintf("r-stairs-%d", f), f, rfidclean.Pt(16.5, 5.5))
		addReader(fmt.Sprintf("r-cor-%d-w", f), f, rfidclean.Pt(4, 1.5))
		addReader(fmt.Sprintf("r-cor-%d-e", f), f, rfidclean.Pt(13, 1.5))
		if prevStairs >= 0 {
			b.AddStairs(prevStairs, st, rfidclean.Pt(16.5, 6.5), rfidclean.Pt(16.5, 6.5), 6)
		}
		prevStairs = st
	}
	plan, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return plan, readers
}
