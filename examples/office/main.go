// Command office demonstrates how each family of integrity constraints
// contributes to cleaning quality — the paper's office-building security
// scenario. It cleans the same reading sequences under DU, DU+LT and
// DU+LT+TT constraint sets and reports how close the cleaned stay-query
// answers get to the ground truth, compared with the unconditioned prior.
package main

import (
	"fmt"
	"log"

	rfidclean "repro"
)

func main() {
	plan, readers := buildOffice()
	sys, err := rfidclean.NewSystem(plan, readers, rfidclean.DefaultThreeState(), 0.5)
	if err != nil {
		log.Fatal(err)
	}
	sys.CalibratePrior(30, rfidclean.NewRNG(5))

	// Three constraint sets of increasing strength (§6.3).
	du := rfidclean.InferDU(sys.Plan)
	dult := du.Clone()
	dult.Merge(rfidclean.InferLT(sys.Plan, 5, rfidclean.Corridor))
	all := dult.Clone()
	tt, err := rfidclean.InferTT(sys.Plan, 2, 0)
	if err != nil {
		log.Fatal(err)
	}
	all.Merge(tt)
	sets := []struct {
		name string
		ic   *rfidclean.ConstraintSet
	}{
		{"none (prior only)", nil},
		{"DU", du},
		{"DU+LT", dult},
		{"DU+LT+TT", all},
	}

	const trajectories = 5
	const duration = 300
	rng := rfidclean.NewRNG(77)

	fmt.Printf("%-18s  %-12s  %-12s\n", "constraints", "stay acc", "graph nodes")
	for _, set := range sets {
		var accSum, nodeSum float64
		var count int
		gen := rfidclean.NewRNG(123) // same trajectories for every set
		for i := 0; i < trajectories; i++ {
			truth, err := rfidclean.GenerateTrajectory(sys.Plan, rfidclean.NewGeneratorConfig(duration), gen.Split())
			if err != nil {
				log.Fatal(err)
			}
			readings := rfidclean.GenerateReadings(truth, sys.Truth, gen.Split())
			cleaned, err := sys.Clean(readings, set.ic, &rfidclean.BuildOptions{EndLatency: rfidclean.LenientEnd})
			if err != nil {
				log.Fatal(err)
			}
			locs := truth.Locations()
			for q := 0; q < 50; q++ {
				tau := rng.Intn(duration)
				dist, err := cleaned.StayDistribution(tau)
				if err != nil {
					log.Fatal(err)
				}
				accSum += dist[locs[tau]]
				count++
			}
			nodeSum += float64(cleaned.Stats().Nodes)
		}
		fmt.Printf("%-18s  %-12.4f  %-12.0f\n", set.name, accSum/float64(count), nodeSum/trajectories)
	}

	// Security use case: probability the monitored badge entered the
	// server room at all during one concrete trace.
	truth, err := rfidclean.GenerateTrajectory(sys.Plan, rfidclean.NewGeneratorConfig(duration), rfidclean.NewRNG(4))
	if err != nil {
		log.Fatal(err)
	}
	readings := rfidclean.GenerateReadings(truth, sys.Truth, rfidclean.NewRNG(5))
	cleaned, err := sys.Clean(readings, all, &rfidclean.BuildOptions{EndLatency: rfidclean.LenientEnd})
	if err != nil {
		log.Fatal(err)
	}
	p, err := cleaned.Match("? serverroom ?")
	if err != nil {
		log.Fatal(err)
	}
	visited := false
	for _, l := range truth.Locations() {
		if plan.Location(l).Name == "serverroom" {
			visited = true
			break
		}
	}
	fmt.Printf("\nP(badge entered the server room) = %.3f   (ground truth: %v)\n", p, visited)
}

// buildOffice lays out one office floor: a corridor, four offices, and a
// server room at the far end.
func buildOffice() (*rfidclean.Plan, []rfidclean.Reader) {
	b := rfidclean.NewMapBuilder()
	cor := b.AddLocation("corridor", rfidclean.Corridor, 0, rfidclean.RectWH(0, 0, 25, 3))
	names := []string{"office1", "office2", "office3", "office4", "serverroom"}
	for i, name := range names {
		x := float64(i * 5)
		room := b.AddLocation(name, rfidclean.Room, 0, rfidclean.RectWH(x, 3, 5, 5))
		b.AddDoor(cor, room, rfidclean.Pt(x+2.5, 3), 1.2)
	}
	plan, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	var readers []rfidclean.Reader
	id := 0
	for i := range names {
		readers = append(readers, rfidclean.Reader{
			ID: id, Name: "r-" + names[i], Floor: 0, Pos: rfidclean.Pt(float64(i*5)+2.5, 5.5),
		})
		id++
	}
	for _, x := range []float64{4, 12.5, 21} {
		readers = append(readers, rfidclean.Reader{
			ID: id, Name: fmt.Sprintf("r-cor-%d", id), Floor: 0, Pos: rfidclean.Pt(x, 1.5),
		})
		id++
	}
	return plan, readers
}
