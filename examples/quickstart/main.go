// Command quickstart is the minimal end-to-end tour of the rfidclean API:
// build a map, place readers, calibrate the prior, infer integrity
// constraints, simulate a monitored object, clean its readings, and query
// the cleaned data.
package main

import (
	"fmt"
	"log"

	rfidclean "repro"
)

func main() {
	// 1. Describe the map: a corridor serving two rooms.
	b := rfidclean.NewMapBuilder()
	corridor := b.AddLocation("corridor", rfidclean.Corridor, 0, rfidclean.RectWH(0, 0, 12, 3))
	lab := b.AddLocation("lab", rfidclean.Room, 0, rfidclean.RectWH(0, 3, 6, 5))
	office := b.AddLocation("office", rfidclean.Room, 0, rfidclean.RectWH(6, 3, 6, 5))
	b.AddDoor(corridor, lab, rfidclean.Pt(3, 3), 1)
	b.AddDoor(corridor, office, rfidclean.Pt(9, 3), 1)
	plan, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Place RFID readers. Coverage overlaps near the doors, so raw
	// readings are ambiguous — that ambiguity is what cleaning resolves.
	readers := []rfidclean.Reader{
		{ID: 0, Name: "r-lab", Floor: 0, Pos: rfidclean.Pt(3, 5.5)},
		{ID: 1, Name: "r-office", Floor: 0, Pos: rfidclean.Pt(9, 5.5)},
		{ID: 2, Name: "r-corridor", Floor: 0, Pos: rfidclean.Pt(6, 1.5)},
	}
	sys, err := rfidclean.NewSystem(plan, readers, rfidclean.DefaultThreeState(), 0.5)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Calibrate the a-priori model p*(l|R) (30 samples per grid cell,
	// as in the paper's §6.2) and infer the integrity constraints from
	// the map and a 2 m/s maximum walking speed.
	sys.CalibratePrior(30, rfidclean.NewRNG(1))
	ic, err := sys.InferConstraints(2.0, 5, 0)
	if err != nil {
		log.Fatal(err)
	}
	du, lt, tt := ic.Counts()
	fmt.Printf("inferred constraints: %d DU, %d LT, %d TT\n", du, lt, tt)

	// 4. Simulate a monitored object for 3 minutes and record readings.
	rng := rfidclean.NewRNG(42)
	truth, err := rfidclean.GenerateTrajectory(sys.Plan, rfidclean.NewGeneratorConfig(180), rng)
	if err != nil {
		log.Fatal(err)
	}
	readings := rfidclean.GenerateReadings(truth, sys.Truth, rng)

	// 5. Clean: condition the probabilistic trajectories on the
	// constraints.
	cleaned, err := sys.Clean(readings, ic, &rfidclean.BuildOptions{EndLatency: rfidclean.LenientEnd})
	if err != nil {
		log.Fatal(err)
	}
	st := cleaned.Stats()
	fmt.Printf("ct-graph: %d nodes, %d edges (~%d KB)\n", st.Nodes, st.Edges, st.Bytes/1024)

	// 6. Query the cleaned data.
	for _, tau := range []int{30, 90, 150} {
		loc, p, err := cleaned.MostLikelyAt(tau)
		if err != nil {
			log.Fatal(err)
		}
		actual := plan.Location(truth.Points[tau].Loc).Name
		fmt.Printf("t=%3d  cleaned says %-8s (p=%.2f)   truth: %s\n", tau, loc.Name, p, actual)
	}

	pLab, err := cleaned.Match("? lab[30] ?")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(spent >= 30 s in the lab) = %.3f\n", pLab)

	best, p := cleaned.MostProbable()
	fmt.Printf("most probable trajectory (p=%.3g) starts in %s and ends in %s\n",
		p, cleaned.LocationName(best[0]), cleaned.LocationName(best[len(best)-1]))
}
