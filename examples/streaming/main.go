// Command streaming demonstrates the online cleaner: instead of collecting a
// whole reading sequence and conditioning it in one batch (Algorithm 1), a
// Filter consumes readings one timestamp at a time and maintains the
// filtered distribution of the object's current location — the natural mode
// for live tracking dashboards.
//
// The example tracks an object in real time, prints the live estimate at
// regular intervals, and finally compares the online estimate against the
// offline (smoothed) ct-graph answer: at the last timestamp the two
// coincide; at earlier timestamps smoothing can use the future and is
// therefore at least as sharp.
//
// The second half replays the same workflow over the wire: it boots the
// query head in-process and drives a streaming ingestion session through the
// HTTP API — open, append readings as they arrive, poll the filtered
// distribution, and close with a final smoothing pass that leaves a
// queryable ct-graph behind.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	rfidclean "repro"
	"repro/internal/server"
)

func main() {
	b := rfidclean.NewMapBuilder()
	cor := b.AddLocation("corridor", rfidclean.Corridor, 0, rfidclean.RectWH(0, 0, 18, 3))
	names := []string{"atrium", "storage", "workshop"}
	for i, name := range names {
		x := float64(i * 6)
		room := b.AddLocation(name, rfidclean.Room, 0, rfidclean.RectWH(x, 3, 6, 5))
		b.AddDoor(cor, room, rfidclean.Pt(x+3, 3), 1.2)
	}
	plan, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	readers := []rfidclean.Reader{
		{ID: 0, Name: "r-atrium", Floor: 0, Pos: rfidclean.Pt(3, 5.5)},
		{ID: 1, Name: "r-storage", Floor: 0, Pos: rfidclean.Pt(9, 5.5)},
		{ID: 2, Name: "r-workshop", Floor: 0, Pos: rfidclean.Pt(15, 5.5)},
		{ID: 3, Name: "r-cor", Floor: 0, Pos: rfidclean.Pt(9, 1.5)},
	}
	sys, err := rfidclean.NewSystem(plan, readers, rfidclean.DefaultThreeState(), 0.5)
	if err != nil {
		log.Fatal(err)
	}
	sys.CalibratePrior(30, rfidclean.NewRNG(3))
	ic, err := sys.InferConstraints(2, 5, 0)
	if err != nil {
		log.Fatal(err)
	}

	const duration = 240
	rng := rfidclean.NewRNG(9)
	truth, err := rfidclean.GenerateTrajectory(sys.Plan, rfidclean.NewGeneratorConfig(duration), rng)
	if err != nil {
		log.Fatal(err)
	}
	readings := rfidclean.GenerateReadings(truth, sys.Truth, rng)

	// Online pass: feed readings to the filter as they "arrive".
	filter := rfidclean.NewFilter(ic, nil)
	fmt.Println("live tracking (online filter):")
	liveCorrect := 0
	for _, r := range readings {
		dist := sys.Prior.Dist(r.Readers)
		var cands []rfidclean.LCandidate
		for loc, p := range dist {
			if p > 0 {
				cands = append(cands, rfidclean.LCandidate{Loc: loc, P: p})
			}
		}
		if err := filter.Observe(cands); err != nil {
			log.Fatalf("t=%d: %v", r.Time, err)
		}
		loc, p, err := filter.MostLikely()
		if err != nil {
			log.Fatal(err)
		}
		if loc == truth.Points[r.Time].Loc {
			liveCorrect++
		}
		if r.Time%40 == 0 {
			fmt.Printf("  t=%3d  estimate %-9s (p=%.2f, frontier %d nodes)   truth %s\n",
				r.Time, plan.Location(loc).Name, p, filter.FrontierSize(),
				plan.Location(truth.Points[r.Time].Loc).Name)
		}
	}
	fmt.Printf("online top-1 accuracy: %.1f%%\n", 100*float64(liveCorrect)/float64(duration))

	// Offline pass for comparison: the smoothed distribution conditions on
	// the whole sequence.
	cleaned, err := sys.Clean(readings, ic, &rfidclean.BuildOptions{EndLatency: rfidclean.LenientEnd})
	if err != nil {
		log.Fatal(err)
	}
	offCorrect := 0
	for tau := 0; tau < duration; tau++ {
		loc, _, err := cleaned.MostLikelyAt(tau)
		if err != nil {
			log.Fatal(err)
		}
		if loc.ID == truth.Points[tau].Loc {
			offCorrect++
		}
	}
	fmt.Printf("offline (smoothed) top-1 accuracy: %.1f%%\n", 100*float64(offCorrect)/float64(duration))

	// At the final timestamp the filtered and smoothed answers coincide.
	final, err := filter.Current(sys.Plan.NumLocations())
	if err != nil {
		log.Fatal(err)
	}
	smoothed, err := cleaned.StayDistribution(duration - 1)
	if err != nil {
		log.Fatal(err)
	}
	maxDiff := 0.0
	for loc := range final {
		if d := final[loc] - smoothed[loc]; d > maxDiff || -d > maxDiff {
			if d < 0 {
				d = -d
			}
			maxDiff = d
		}
	}
	fmt.Printf("max |filtered - smoothed| at the final timestamp: %.2g\n", maxDiff)

	// --- The same workflow over HTTP: streaming ingestion sessions. ---
	ts := httptest.NewServer(server.New())
	defer ts.Close()

	dep := &rfidclean.Deployment{
		Name: "streaming-demo", Plan: plan, Readers: readers,
		Detection: rfidclean.DefaultThreeState(), CellSize: 0.5,
		CalibrationSamples: 30, Seed: 3,
	}
	var buf bytes.Buffer
	if err := dep.Encode(&buf); err != nil {
		log.Fatal(err)
	}
	depID := postJSON(ts.URL+"/v1/deployments", buf.Bytes())["id"].(string)

	open, _ := json.Marshal(server.StreamOpenRequest{Deployment: depID, MaxSpeed: 2, MinStay: 5})
	sid := postJSON(ts.URL+"/v1/stream", open)["id"].(string)
	fmt.Printf("\nHTTP session %s on deployment %s:\n", sid, depID)

	// Feed the readings in small batches, as a live gateway would, and poll
	// the filtered estimate along the way.
	for i := 0; i < len(readings); i += 24 {
		end := i + 24
		if end > len(readings) {
			end = len(readings)
		}
		body, _ := json.Marshal(server.StreamReadingsRequest{Readings: readings[i:end]})
		postJSON(ts.URL+"/v1/stream/"+sid+"/readings", body)

		resp, err := http.Get(ts.URL + "/v1/stream/" + sid + "?top=1")
		if err != nil {
			log.Fatal(err)
		}
		var st server.StreamStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		if st.Time%72 == 71 {
			fmt.Printf("  t=%3d  GET ?top=1 -> %-9s (p=%.2f, frontier %d)\n",
				st.Time, st.Current[0].Location, st.Current[0].P, st.Frontier)
		}
	}

	// Close the session; by default the server re-cleans the buffered
	// sequence offline and stores the smoothed ct-graph.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/stream/"+sid, nil)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	var closed server.StreamCloseResponse
	if err := json.NewDecoder(resp.Body).Decode(&closed); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("closed %s; smoothed trajectory %s (%d nodes) is now queryable:\n",
		closed.Closed, closed.Trajectory.ID, closed.Trajectory.Nodes)

	// The stored trajectory answers the usual warehouse queries.
	qresp, err := http.Get(fmt.Sprintf("%s/v1/trajectories/%s/stay?t=%d", ts.URL, closed.Trajectory.ID, duration-1))
	if err != nil {
		log.Fatal(err)
	}
	var stay []server.LocationProb
	if err := json.NewDecoder(qresp.Body).Decode(&stay); err != nil {
		log.Fatal(err)
	}
	qresp.Body.Close()
	fmt.Printf("  stay?t=%d -> %s (p=%.2f), matching the live filter above\n",
		duration-1, stay[0].Location, stay[0].P)
}

// postJSON posts a JSON body and decodes the JSON object that comes back,
// failing the example on any non-2xx answer.
func postJSON(url string, body []byte) map[string]any {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode/100 != 2 {
		log.Fatalf("POST %s: %d: %v", url, resp.StatusCode, out)
	}
	return out
}
