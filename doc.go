// Package rfidclean is a probabilistic cleaning framework for the
// trajectories of RFID-monitored objects, reproducing "Cleaning trajectory
// data of RFID-monitored objects through conditioning under integrity
// constraints" (Fazzinga, Flesca, Furfaro, Parisi — EDBT 2014).
//
// RFID readings — (timestamp, set-of-detecting-readers) pairs — are an
// ambiguous record of where an object was: readers overlap, locations share
// readers, and readers miss tags. The framework interprets the readings
// through an a-priori distribution p*(l|R) learned on a grid partitioning of
// the map, then *conditions* the resulting probabilistic trajectories on the
// event that integrity constraints hold:
//
//   - direct unreachability (DU): rooms not sharing a door cannot be
//     consecutive;
//   - traveling time (TT): distant locations need at least ν seconds of
//     travel;
//   - latency (LT): a visit to a location lasts at least δ seconds.
//
// The result is a conditioned trajectory graph (ct-graph): a compact DAG
// whose source-to-target paths are exactly the valid trajectories and whose
// path probabilities are the conditioned probabilities. Stay queries
// ("where was the object at τ?"), trajectory-pattern queries ("did it visit
// L1 for 3s and later L2?"), most-probable-trajectory extraction and
// weighted sampling all run directly on the graph.
//
// # Quickstart
//
//	plan := ...                       // build a map with NewMapBuilder
//	sys, _ := rfidclean.NewSystem(plan, readers, rfidclean.DefaultThreeState(), 0.5)
//	sys.CalibratePrior(30, rfidclean.NewRNG(1))        // learn p*(l|R)
//	ic, _ := sys.InferConstraints(2.0, 5, 0)           // DU+LT+TT from the map
//	cleaned, _ := sys.Clean(readings, ic, nil)
//	dist, _ := cleaned.StayDistribution(42)            // where at τ=42?
//	locs, p := cleaned.MostProbable()                  // best explanation
//
// See examples/ for complete programs and DESIGN.md for the paper-to-code
// map.
package rfidclean
