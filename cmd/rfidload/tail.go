package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"

	"repro/internal/obs"
)

// This file closes the observability loop after a run: the recorder kept the
// request IDs of each endpoint's slowest requests, the daemon kept their span
// traces (its retention policy always holds the slowest-N per endpoint), so
// the harness can fetch each trace back and say WHERE the tail latency went —
// per server-side phase, not just how large it was.

// attributeTails fills res.TailAttribution from the recorder's slowest-K
// lists. A request whose trace the daemon no longer holds (or never traced)
// stays listed without phases.
func (r *runner) attributeTails(ctx context.Context, res *Result) {
	tails := make(map[string]*EndpointTail)
	for _, endpoint := range endpointNames {
		slow := r.rec.slowest(endpoint)
		if len(slow) == 0 {
			continue
		}
		tail := &EndpointTail{}
		phaseTotals := make(map[string]float64)
		for _, s := range slow {
			sr := SlowRequest{RequestID: s.id, Ms: ms(s.dur.Nanoseconds()), Status: s.status}
			if tr, err := r.fetchTrace(ctx, s.id); err == nil {
				sr.Phases, sr.DominantPhase = phaseBreakdown(tr)
				for k, v := range sr.Phases {
					phaseTotals[k] += v
				}
			}
			tail.Slowest = append(tail.Slowest, sr)
		}
		tail.DominantPhase = dominantPhase(phaseTotals)
		tails[endpoint] = tail
	}
	if len(tails) > 0 {
		res.TailAttribution = tails
	}
}

// fetchTrace GETs one span tree from /debug/traces?id=.
func (r *runner) fetchTrace(ctx context.Context, id string) (*obs.TraceExport, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/debug/traces?id="+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /debug/traces?id=%s: %s", id, resp.Status)
	}
	var tr obs.TraceExport
	if err := json.Unmarshal(data, &tr); err != nil {
		return nil, err
	}
	return &tr, nil
}

// phaseBreakdown sums the http.request root's direct child spans by name
// (milliseconds); whatever the spans do not cover is "unattributed" —
// middleware, serialization, scheduling.
func phaseBreakdown(tr *obs.TraceExport) (map[string]float64, string) {
	if len(tr.Spans) == 0 {
		return nil, ""
	}
	root := tr.Spans[0]
	phases := make(map[string]float64)
	var covered int64
	for _, c := range root.Spans {
		phases[c.Name] += float64(c.DurationMicros) / 1e3
		covered += c.DurationMicros
	}
	if rem := root.DurationMicros - covered; rem > 0 {
		phases["unattributed"] = float64(rem) / 1e3
	}
	return phases, dominantPhase(phases)
}

// dominantPhase picks the largest phase (ties break by name for determinism).
func dominantPhase(phases map[string]float64) string {
	var name string
	var max float64
	for k, v := range phases {
		if v > max || (v == max && (name == "" || k < name)) {
			name, max = k, v
		}
	}
	return name
}

// fetchFlight writes the daemon's /debug/flight window verbatim to path.
func (r *runner) fetchFlight(ctx context.Context, path string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/debug/flight", nil)
	if err != nil {
		return err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /debug/flight: %s: %s", resp.Status, data)
	}
	return os.WriteFile(path, data, 0o644)
}
