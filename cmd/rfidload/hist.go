package main

import (
	"math/bits"
	"sync/atomic"
)

// This file is the harness's latency histogram: HDR-style log-bucketed, the
// same shape as internal/server's Prometheus histograms but with enough
// resolution to read a p999 off a 20-second run. Values are nanoseconds.
//
// The bucket ladder is the classic HDR layout: values below 2*2^histSubBits
// are recorded exactly; above that, each power-of-two octave is split into
// 2^histSubBits linear sub-buckets, bounding the relative quantile error at
// 2^-(histSubBits+1) (under 0.8% here). Recording is a single atomic add, so
// the worker pool shares one histogram per endpoint without locks.

const (
	histSubBits = 6
	histSub     = 1 << histSubBits
	// histBuckets covers every non-negative int64: the widest index is
	// (shift+1)*histSub + sub with shift <= 62-histSubBits.
	histBuckets = (64 - histSubBits) * histSub
)

type hist struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

// histIndex maps a nanosecond value to its bucket.
func histIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < 2*histSub {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // position of the top set bit, >= histSubBits+1
	shift := exp - histSubBits       // >= 1
	sub := int(v>>shift) - histSub   // in [0, histSub)
	return (shift+1)*histSub + sub
}

// histBounds returns the half-open value range [lo, hi) of a bucket.
func histBounds(idx int) (lo, hi int64) {
	if idx < 2*histSub {
		return int64(idx), int64(idx) + 1
	}
	shift := idx/histSub - 1
	sub := int64(idx % histSub)
	lo = (histSub + sub) << shift
	return lo, lo + 1<<shift
}

func (h *hist) observe(v int64) {
	h.counts[histIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// quantile returns the value at quantile q in [0, 1] (the midpoint of the
// bucket holding the rank), or 0 for an empty histogram.
func (h *hist) quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			lo, hi := histBounds(i)
			return lo + (hi-lo-1)/2
		}
	}
	return h.max.Load()
}

func (h *hist) mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// cumulative folds the fine-grained buckets onto a coarse bound ladder given
// in seconds (internal/server's scheme), returning cumulative counts per
// bound plus the +Inf total — so client-side distributions line up with the
// daemon's /metrics histograms.
func (h *hist) cumulative(boundsSeconds []float64) []uint64 {
	out := make([]uint64, len(boundsSeconds)+1)
	for i := 0; i < histBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		lo, hi := histBounds(i)
		mid := float64(lo+(hi-lo-1)/2) / 1e9
		j := len(boundsSeconds)
		for k, b := range boundsSeconds {
			if mid <= b {
				j = k
				break
			}
		}
		out[j] += c
	}
	for i := 1; i < len(out); i++ {
		out[i] += out[i-1]
	}
	return out
}
