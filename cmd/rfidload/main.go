// Command rfidload is the city-scale load harness: a deterministic, seedable
// generator that synthesizes K deployments x M tags x a mixed workload
// (batch cleans, streaming sessions with readings/smooth/SSE subscribers,
// stay/pattern/top-k trajectory queries) and drives it against a live
// rfidcleand with an open-loop worker-pool driver at a target request rate.
//
// It records per-endpoint p50/p99/p999 latency in HDR-style log-bucketed
// histograms, error rates per class (4xx / 5xx / transport) and achieved
// throughput; emits a human table plus a machine-readable LOAD_RESULT.json;
// and evaluates a declarative SLO spec (-slo slo.json), exiting non-zero on
// any violation — the CI regression gate for the serving path.
//
// After the run it closes the observability loop: the daemon's traces for
// each endpoint's slowest requests are fetched back by request ID and their
// wall time attributed to server-side phases (the tailAttribution block of
// LOAD_RESULT.json and a human table); -flight-out additionally saves the
// daemon's /debug/flight runtime window covering the run.
//
// Usage:
//
//	rfidcleand -addr :8080 &
//	rfidload -daemon http://127.0.0.1:8080 -seed 1 -rate 25 -duration 20s \
//	    -slo SLO_BASELINE.json -out LOAD_RESULT.json
//
// The workload plan is a pure function of the flags: two runs with the same
// seed issue the identical operation schedule (-dry-run prints it without
// needing a daemon).
//
// A second mode load-tests the SSE fan-out of an externally created session
// (e.g. one fed by cmd/rfidedge): -sse-session attaches -sse-subscribers
// well-behaved subscribers and exits non-zero unless every one of them
// survives to the session's close event without being evicted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"
)

// runConfig carries the flag set. The plan-shaping subset is split into
// planConfig; the rest steers execution.
type runConfig struct {
	Daemon     string
	Workers    int
	ReqTimeout time.Duration
	Grace      time.Duration
	Binary     bool
	Duration   time.Duration

	SLOPath   string
	OutPath   string
	FlightOut string
	DryRun    bool

	SSESession     string
	SSESubscribers int
}

// errSLO marks an SLO-gate failure so main can pick the exit code.
var errSLO = errors.New("rfidload: SLO violated")

func main() {
	log.SetFlags(0)
	log.SetPrefix("rfidload: ")
	err := run(os.Args[1:], os.Stdout)
	switch {
	case err == nil:
	case errors.Is(err, errSLO):
		log.Print(err)
		os.Exit(1)
	default:
		log.Print(err)
		os.Exit(2)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("rfidload", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		rc runConfig
		pc planConfig
		ds string
	)
	fs.StringVar(&rc.Daemon, "daemon", "http://127.0.0.1:8080", "rfidcleand base URL")
	fs.Uint64Var(&pc.Seed, "seed", 1, "workload seed; same seed, byte-identical plan")
	fs.StringVar(&ds, "datasets", "SYN1", "comma-separated base datasets rotated across deployments (SYN1, SYN2)")
	fs.IntVar(&pc.Deployments, "deployments", 2, "deployments (K) to register and spread load over")
	fs.IntVar(&pc.Tags, "tags", 8, "reading sequences (M) synthesized per deployment")
	fs.IntVar(&pc.ReadingDuration, "reading-duration", 60, "seconds per synthesized reading sequence")
	fs.Float64Var(&pc.Rate, "rate", 25, "target operation issue rate per second (open loop)")
	fs.DurationVar(&rc.Duration, "duration", 20*time.Second, "how long to issue operations")
	fs.IntVar(&pc.Batch, "batch", 4, "sequences per batch-clean operation")
	fs.IntVar(&pc.Chunk, "chunk", 20, "readings per streaming POST")
	fs.IntVar(&rc.Workers, "workers", 16, "worker pool size draining the open-loop queue")
	fs.DurationVar(&rc.ReqTimeout, "req-timeout", 30*time.Second, "per-request timeout (transport-class error past it)")
	fs.DurationVar(&rc.Grace, "grace", 30*time.Second, "post-deadline drain budget for in-flight ops and subscribers")
	fs.BoolVar(&rc.Binary, "binary", false, "send streaming readings as application/x-rfidclean frames instead of JSON")
	fs.StringVar(&rc.SLOPath, "slo", "", "SLO spec to evaluate; any violation exits non-zero")
	fs.StringVar(&rc.OutPath, "out", "", "write the machine-readable result JSON here")
	fs.StringVar(&rc.FlightOut, "flight-out", "", "after the run, fetch the daemon's /debug/flight window to this file")
	fs.BoolVar(&rc.DryRun, "dry-run", false, "print the synthesized workload plan and exit without contacting a daemon")
	fs.StringVar(&rc.SSESession, "sse-session", "", "skip the mixed workload: attach subscribers to this existing stream session")
	fs.IntVar(&rc.SSESubscribers, "sse-subscribers", 10, "subscribers to attach in -sse-session mode")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if rc.Workers < 1 {
		return fmt.Errorf("rfidload: -workers must be >= 1, got %d", rc.Workers)
	}
	rc.Daemon = strings.TrimRight(rc.Daemon, "/")
	pc.Duration = rc.Duration
	pc.Datasets = strings.Split(ds, ",")

	// The SLO spec is parsed before any load is generated: a malformed gate
	// must fail the run up front, not after 20 seconds of traffic.
	var spec *sloSpec
	if rc.SLOPath != "" {
		var err error
		if spec, err = loadSLO(rc.SLOPath); err != nil {
			return err
		}
	}

	if rc.SSESession != "" {
		return runSSEOnly(rc, stdout)
	}

	plan, err := synthesizePlan(pc)
	if err != nil {
		return err
	}
	if rc.DryRun {
		data, err := encodePlan(plan)
		if err != nil {
			return err
		}
		log.Printf("dry run: %s", summarizePlan(plan))
		_, err = stdout.Write(data)
		return err
	}

	r := newRunner(rc, plan)
	ctx := context.Background()
	log.Printf("plan: %s", summarizePlan(plan))
	setupStart := time.Now()
	if err := r.setup(ctx); err != nil {
		return err
	}
	log.Printf("setup done in %.1fs; driving %s for %s", time.Since(setupStart).Seconds(), rc.Daemon, rc.Duration)
	res := r.run(ctx)

	// Post-run: resolve the slowest requests' traces into per-phase
	// breakdowns, and optionally pull the daemon's flight window while it
	// still covers the run.
	r.attributeTails(ctx, res)
	if rc.FlightOut != "" {
		if err := r.fetchFlight(ctx, rc.FlightOut); err != nil {
			log.Printf("flight window fetch failed: %v", err)
		} else {
			log.Printf("wrote %s", rc.FlightOut)
		}
	}

	writeTable(stdout, res)
	return finish(rc, spec, res, stdout)
}

// finish applies the SLO gate and writes the result file (always, even on a
// violated gate: the artifact is most valuable exactly when CI goes red).
func finish(rc runConfig, spec *sloSpec, res *Result, stdout io.Writer) error {
	var violations []violation
	if spec != nil {
		violations = spec.evaluate(res)
		res.SLO = &SLOResult{Spec: rc.SLOPath, Passed: len(violations) == 0, Violations: violations}
	}
	if rc.OutPath != "" {
		if err := writeResult(rc.OutPath, res); err != nil {
			return err
		}
		log.Printf("wrote %s", rc.OutPath)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(stdout, "SLO VIOLATION: %s\n", v.Message)
		}
		return fmt.Errorf("%w: %d violation(s) against %s", errSLO, len(violations), rc.SLOPath)
	}
	if spec != nil {
		fmt.Fprintf(stdout, "SLO: all rules in %s hold\n", rc.SLOPath)
	}
	return nil
}

// runSSEOnly attaches N well-behaved subscribers to an existing session and
// demands every one of them survive — unevicted — to the close event.
func runSSEOnly(rc runConfig, stdout io.Writer) error {
	ctx, cancel := context.WithTimeout(context.Background(), rc.Duration+rc.Grace)
	defer cancel()
	client := &http.Client{}
	var stats sseStats
	var wg sync.WaitGroup
	log.Printf("attaching %d subscribers to session %s on %s", rc.SSESubscribers, rc.SSESession, rc.Daemon)
	for i := 0; i < rc.SSESubscribers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			subscribe(ctx, client, rc.Daemon, rc.SSESession, nil, &stats, nil)
		}()
	}
	wg.Wait()
	res := stats.result()
	if res == nil {
		return fmt.Errorf("rfidload: no subscribers ran")
	}
	fmt.Fprintf(stdout, "sse: %d subscribers, %d events, %d closed, %d evicted, %d incomplete\n",
		res.Subscribers, res.Events, res.Closed, res.Evicted, res.Incomplete)
	if rc.OutPath != "" {
		if err := writeResult(rc.OutPath, &Result{Daemon: rc.Daemon, SSE: res, Endpoints: map[string]EndpointResult{}}); err != nil {
			return err
		}
	}
	if res.Evicted > 0 || res.Closed != res.Subscribers {
		return fmt.Errorf("%w: %d/%d subscribers saw close, %d evicted, %d incomplete",
			errSLO, res.Closed, res.Subscribers, res.Evicted, res.Incomplete)
	}
	return nil
}
