package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/server"
)

// e2eArgs is a scaled-down mixed workload against an in-process daemon.
func e2eArgs(ts *httptest.Server, extra ...string) []string {
	args := []string{
		"-daemon", ts.URL, "-seed", "1", "-deployments", "1", "-tags", "2",
		"-reading-duration", "30", "-rate", "30", "-duration", "2s",
		"-batch", "2", "-chunk", "10", "-workers", "8",
	}
	return append(args, extra...)
}

func TestEndToEndPassingSLO(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a 2s wall-clock load run")
	}
	ts := httptest.NewServer(server.New())
	defer ts.Close()

	dir := t.TempDir()
	sloPath := filepath.Join(dir, "slo.json")
	outPath := filepath.Join(dir, "result.json")
	flightPath := filepath.Join(dir, "flight.json")
	// Generous ceilings: the gate must pass on any healthy in-process run.
	if err := os.WriteFile(sloPath, []byte(`{
		"minThroughput": 1,
		"endpoints": {
			"clean": {"maxP99Ms": 60000, "maxErrorRate": 0},
			"query_stay": {"maxP99Ms": 60000, "maxErrorRate": 0},
			"stream_open": {"maxP99Ms": 60000, "maxErrorRate": 0}
		}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout bytes.Buffer
	if err := run(e2eArgs(ts, "-slo", sloPath, "-out", outPath, "-flight-out", flightPath), &stdout); err != nil {
		t.Fatalf("load run failed: %v\n%s", err, stdout.String())
	}

	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("result file not written: %v", err)
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("result file is not valid JSON: %v", err)
	}
	if res.TotalRequests == 0 || res.Throughput <= 0 {
		t.Fatalf("run recorded no traffic: %+v", res)
	}
	if res.TotalErrors != 0 {
		t.Fatalf("healthy in-process run produced %d errors:\n%s", res.TotalErrors, data)
	}
	if res.SLO == nil || !res.SLO.Passed {
		t.Fatalf("SLO block missing or failed: %+v", res.SLO)
	}
	for _, name := range []string{"clean", "query_stay", "stream_open"} {
		ep, ok := res.Endpoints[name]
		if !ok || ep.Count == 0 {
			t.Fatalf("endpoint %s saw no samples: %s", name, data)
		}
		if ep.P50Ms < 0 || ep.P99Ms < ep.P50Ms || ep.P999Ms < ep.P99Ms {
			t.Fatalf("endpoint %s percentiles not monotone: %+v", name, ep)
		}
		if _, ok := ep.Buckets["+Inf"]; !ok {
			t.Fatalf("endpoint %s has no +Inf bucket on the server ladder: %+v", name, ep)
		}
	}
	if res.SSE != nil && res.SSE.Evicted > 0 {
		t.Fatalf("well-behaved SSE subscribers were evicted: %+v", res.SSE)
	}

	// Tail attribution: the clean endpoint's slowest requests must resolve
	// to server-side traces with a named dominant phase — the daemon's
	// retention policy always holds the slowest-N per endpoint, so a healthy
	// run cannot come back empty.
	tail := res.TailAttribution["clean"]
	if tail == nil || len(tail.Slowest) == 0 {
		t.Fatalf("no tail attribution for clean:\n%s", data)
	}
	attributed := 0
	for _, s := range tail.Slowest {
		if s.RequestID == "" || s.Ms <= 0 {
			t.Fatalf("malformed slow request: %+v", s)
		}
		if len(s.Phases) > 0 {
			attributed++
			if s.DominantPhase == "" {
				t.Fatalf("phases without a dominant phase: %+v", s)
			}
		}
	}
	if attributed == 0 {
		t.Fatalf("no clean slow request resolved to a trace:\n%s", data)
	}
	if tail.DominantPhase == "" {
		t.Fatalf("endpoint-level dominant phase missing: %+v", tail)
	}
	if !bytes.Contains(stdout.Bytes(), []byte("tail attribution")) {
		t.Fatalf("human table missing the tail attribution section:\n%s", stdout.String())
	}

	// The flight window was fetched and is a JSON document with samples.
	fdata, err := os.ReadFile(flightPath)
	if err != nil {
		t.Fatalf("flight window not written: %v", err)
	}
	var flight struct {
		Samples []map[string]any `json:"samples"`
	}
	if err := json.Unmarshal(fdata, &flight); err != nil || len(flight.Samples) == 0 {
		t.Fatalf("flight window empty or invalid (err %v):\n%s", err, fdata)
	}
}

func TestEndToEndViolatedSLOExitsNonZero(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a 2s wall-clock load run")
	}
	ts := httptest.NewServer(server.New())
	defer ts.Close()

	dir := t.TempDir()
	sloPath := filepath.Join(dir, "slo.json")
	outPath := filepath.Join(dir, "result.json")
	// An impossible ceiling: no request finishes in a nanosecond.
	if err := os.WriteFile(sloPath, []byte(`{"endpoints": {"clean": {"maxP99Ms": 0.000001}}}`), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout bytes.Buffer
	err := run(e2eArgs(ts, "-slo", sloPath, "-out", outPath), &stdout)
	if !errors.Is(err, errSLO) {
		t.Fatalf("impossible SLO must fail with errSLO, got %v", err)
	}
	if !bytes.Contains(stdout.Bytes(), []byte("SLO VIOLATION")) {
		t.Fatalf("violation not reported on stdout:\n%s", stdout.String())
	}
	// The artifact is still written — it is most valuable when the gate trips.
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("result file must be written even on violation: %v", err)
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.SLO == nil || res.SLO.Passed || len(res.SLO.Violations) == 0 {
		t.Fatalf("result must record the failed gate: %+v", res.SLO)
	}
}

func TestMalformedSLOFailsBeforeLoad(t *testing.T) {
	dir := t.TempDir()
	sloPath := filepath.Join(dir, "slo.json")
	if err := os.WriteFile(sloPath, []byte(`{"endpoints": {"bogus": {}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout bytes.Buffer
	// No daemon is running at this address; the malformed gate must fail
	// before any connection is attempted.
	err := run([]string{"-daemon", "http://127.0.0.1:1", "-slo", sloPath}, &stdout)
	if err == nil || errors.Is(err, errSLO) {
		t.Fatalf("malformed spec must be a usage error, got %v", err)
	}
}
