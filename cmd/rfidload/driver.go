package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	rfidclean "repro"
	"repro/internal/dataset"
	"repro/internal/server"
)

// This file executes a synthesized plan against a live daemon with an
// open-loop worker-pool driver: every operation has a fixed issue time on
// the schedule (plan.Ops[i].AtMs) regardless of how long earlier operations
// take, so a saturated server shows up as scheduling lag, queueing and
// eventually skipped ops — not as a politely slowed-down workload. A fixed
// pool of workers drains the dispatch queue; per-request latency is measured
// send-to-response so endpoint SLOs stay meaningful under backlog, and the
// dispatch delay itself is reported separately (schedLag).

// depRuntime is one registered deployment's runtime state.
type depRuntime struct {
	plan     deploymentPlan
	serverID string                      // id the daemon assigned at registration
	seqs     []rfidclean.ReadingSequence // one synthesized sequence per tag
	maxSpeed float64
	minStay  int
	ttCap    int

	mu  sync.Mutex
	ids []string // trajectory ids available to queries, oldest first
}

func (d *depRuntime) addTarget(id string) {
	if id == "" {
		return
	}
	d.mu.Lock()
	d.ids = append(d.ids, id)
	d.mu.Unlock()
}

func (d *depRuntime) pickTarget(qIndex int) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.ids) == 0 {
		return ""
	}
	return d.ids[qIndex%len(d.ids)]
}

// runner drives one load run.
type runner struct {
	cfg    runConfig
	plan   *workloadPlan
	base   string
	client *http.Client // per-request timeout; not used for SSE
	sseC   *http.Client // no client timeout; SSE lives on the run context
	rec    *recorder
	deps   []*depRuntime
	sse    sseStats
	sseWG  sync.WaitGroup

	dispatched atomic.Uint64
	skipped    atomic.Uint64
}

func newRunner(cfg runConfig, plan *workloadPlan) *runner {
	transport := &http.Transport{
		MaxIdleConns:        cfg.Workers * 2,
		MaxIdleConnsPerHost: cfg.Workers * 2,
	}
	return &runner{
		cfg:    cfg,
		plan:   plan,
		base:   cfg.Daemon,
		client: &http.Client{Transport: transport, Timeout: cfg.ReqTimeout},
		sseC:   &http.Client{Transport: transport},
		rec:    newRecorder(),
	}
}

// setup synthesizes the per-deployment datasets, registers them with the
// daemon and pre-cleans one trajectory per deployment so query ops always
// have a target. Setup traffic is not measured: the run's histograms cover
// the steady-state workload, not the warm-up.
func (r *runner) setup(ctx context.Context) error {
	for i, dp := range r.plan.Deployments {
		cfg, err := dataset.ConfigByName(dp.Dataset)
		if err != nil {
			return err
		}
		cfg.Seed = dp.Seed
		d, err := dataset.Build(dp.Dataset, cfg)
		if err != nil {
			return fmt.Errorf("rfidload: building %s for deployment %d: %v", dp.Dataset, i, err)
		}
		instances, err := d.Generate(r.plan.ReadingDuration, dp.Tags, dp.Stream)
		if err != nil {
			return fmt.Errorf("rfidload: generating tags for deployment %d: %v", i, err)
		}
		rt := &depRuntime{plan: dp, maxSpeed: cfg.MaxSpeed, minStay: cfg.MinStay, ttCap: cfg.TTCap}
		for _, inst := range instances {
			rt.seqs = append(rt.seqs, rfidclean.ReadingSequence(inst.Readings))
		}

		dep := &rfidclean.Deployment{
			Name:               fmt.Sprintf("%s-load-%d", dp.Dataset, i),
			Plan:               d.Plan,
			Readers:            d.Readers,
			Detection:          cfg.Detection,
			CellSize:           cfg.CellSize,
			CalibrationSamples: cfg.CalibrationSamples,
			Seed:               cfg.Seed,
		}
		raw, err := dep.EncodeBytes()
		if err != nil {
			return err
		}
		var reg struct {
			ID string `json:"id"`
		}
		if err := r.callJSON(ctx, http.MethodPost, "/v1/deployments", raw, &reg); err != nil {
			return fmt.Errorf("rfidload: registering deployment %d: %v", i, err)
		}
		rt.serverID = reg.ID

		var seeded server.CleanResponse
		if err := r.callJSON(ctx, http.MethodPost, "/v1/clean", rt.cleanBody(0, rt.seqs[0:1]), &seeded); err != nil {
			return fmt.Errorf("rfidload: seeding deployment %s with a trajectory: %v", reg.ID, err)
		}
		rt.addTarget(seeded.ID)
		r.deps = append(r.deps, rt)
		log.Printf("registered deployment %s (%s, %d tags, %d-second sequences)",
			reg.ID, dp.Dataset, dp.Tags, r.plan.ReadingDuration)
	}
	return nil
}

// callJSON is the unrecorded setup helper: POST/GET JSON, decode into out,
// error on any non-2xx.
func (r *runner) callJSON(ctx context.Context, method, path string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, r.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(data))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// cleanBody builds a CleanRequest (one sequence plus optional group mates).
// tag is the plan's tag index; it rides along as the request's tag so a
// sharding router keeps one object's cleans on one shard.
func (d *depRuntime) cleanBody(tag int, seqs []rfidclean.ReadingSequence) []byte {
	body, _ := json.Marshal(server.CleanRequest{
		Deployment: d.serverID,
		Tag:        d.tagName(tag),
		Readings:   seqs[0],
		MaxSpeed:   d.maxSpeed,
		MinStay:    d.minStay,
		TTCap:      d.ttCap,
	})
	return body
}

// tagName labels a plan tag index as a stable object identity, unique
// across deployments.
func (d *depRuntime) tagName(tag int) string {
	return fmt.Sprintf("%s-tag%d", d.serverID, tag)
}

// call issues one measured request and records it under endpoint. The
// response body is fully read so connections are reused; out, when non-nil,
// receives the decoded JSON of 2xx responses.
func (r *runner) call(ctx context.Context, endpoint, method, path, contentType string, body []byte, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, r.base+path, rd)
	if err != nil {
		r.rec.record(endpoint, 0, 0, err, "")
		return 0, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	start := time.Now()
	resp, err := r.client.Do(req)
	if err != nil {
		r.rec.record(endpoint, time.Since(start), 0, err, "")
		return 0, err
	}
	reqID := resp.Header.Get("X-Request-ID")
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	elapsed := time.Since(start)
	if err != nil {
		r.rec.record(endpoint, elapsed, 0, err, reqID)
		return 0, err
	}
	r.rec.record(endpoint, elapsed, resp.StatusCode, nil, reqID)
	if resp.StatusCode/100 == 2 && out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// run dispatches the plan. The dispatcher walks the schedule; workers drain
// the queue. Returns the measured Result (SLO evaluation happens upstream).
func (r *runner) run(ctx context.Context) *Result {
	start := time.Now()
	deadline := start.Add(r.cfg.Duration)
	runCtx, cancel := context.WithDeadline(ctx, deadline.Add(r.cfg.Grace))
	defer cancel()

	type queued struct {
		op opPlan
		at time.Time
	}
	ch := make(chan queued, len(r.plan.Ops))

	var wg sync.WaitGroup
	for w := 0; w < r.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := range ch {
				// Open-loop honesty: an op a worker only reaches after the
				// run window closed is skipped and counted, never silently
				// executed late.
				if time.Now().After(deadline) {
					r.skipped.Add(1)
					continue
				}
				r.rec.schedLag.Observe(time.Since(q.at).Nanoseconds())
				r.execute(runCtx, q.op)
			}
		}()
	}

dispatch:
	for _, op := range r.plan.Ops {
		at := start.Add(time.Duration(op.AtMs) * time.Millisecond)
		if wait := time.Until(at); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				break dispatch
			}
		}
		if time.Now().After(deadline) {
			break
		}
		r.dispatched.Add(1)
		ch <- queued{op: op, at: at}
	}
	close(ch)
	wg.Wait()
	// Subscribers outlive their stream op only until the session's close
	// event lands; give them until the grace deadline.
	done := make(chan struct{})
	go func() { r.sseWG.Wait(); close(done) }()
	select {
	case <-done:
	case <-runCtx.Done():
	}
	elapsed := time.Since(start)

	res := r.rec.buildResult(elapsed)
	res.Seed = r.plan.Seed
	res.Daemon = r.cfg.Daemon
	res.Rate = r.plan.Rate
	res.DurationSeconds = r.plan.DurationSeconds
	res.Workers = r.cfg.Workers
	res.Deployments = len(r.plan.Deployments)
	res.TagsPerDeployment = r.plan.Deployments[0].Tags
	res.ReadingDuration = r.plan.ReadingDuration
	res.PlannedOps = len(r.plan.Ops)
	res.DispatchedOps = int(r.dispatched.Load())
	res.SkippedOps = int(r.skipped.Load())
	res.SSE = r.sse.result()
	return res
}

// execute runs one scheduled operation.
func (r *runner) execute(ctx context.Context, op opPlan) {
	dep := r.deps[op.Dep]
	switch op.Kind {
	case opClean:
		var out server.CleanResponse
		if st, err := r.call(ctx, "clean", http.MethodPost, "/v1/clean",
			"application/json", dep.cleanBody(op.Tag, dep.seqs[op.Tag:op.Tag+1]), &out); err == nil && st/100 == 2 {
			dep.addTarget(out.ID)
		}
	case opBatch:
		seqs := make([]rfidclean.ReadingSequence, 0, op.Span)
		for i := 0; i < op.Span; i++ {
			seqs = append(seqs, dep.seqs[(op.Tag+i)%len(dep.seqs)])
		}
		body, _ := json.Marshal(server.BatchCleanRequest{
			Deployment: dep.serverID,
			Sequences:  seqs,
			MaxSpeed:   dep.maxSpeed,
			MinStay:    dep.minStay,
			TTCap:      dep.ttCap,
		})
		var out []server.BatchCleanResult
		if st, err := r.call(ctx, "clean_batch", http.MethodPost, "/v1/clean/batch",
			"application/json", body, &out); err == nil && st/100 == 2 {
			for _, slot := range out {
				dep.addTarget(slot.ID)
			}
		}
	case opStream:
		r.executeStream(ctx, dep, op)
	case opStay:
		id := dep.pickTarget(op.QIndex)
		if id == "" {
			return
		}
		r.call(ctx, "query_stay", http.MethodGet,
			"/v1/trajectories/"+id+"/stay?t="+strconv.Itoa(op.T), "", nil, nil)
	case opPattern:
		id := dep.pickTarget(op.QIndex)
		if id == "" {
			return
		}
		r.call(ctx, "query_pattern", http.MethodGet,
			"/v1/trajectories/"+id+"/match?pattern="+url.QueryEscape(op.Pattern), "", nil, nil)
	case opTop:
		id := dep.pickTarget(op.QIndex)
		if id == "" {
			return
		}
		r.call(ctx, "query_top", http.MethodGet,
			"/v1/trajectories/"+id+"/top?k="+strconv.Itoa(op.K), "", nil, nil)
	}
}

// executeStream drives one full streaming session: open, optionally attach
// an SSE subscriber, feed the tag's readings in chunks (optionally smoothing
// mid-stream), then close — which smooths once more and stores the
// trajectory for later query ops.
func (r *runner) executeStream(ctx context.Context, dep *depRuntime, op opPlan) {
	body, _ := json.Marshal(server.StreamOpenRequest{
		Deployment: dep.serverID,
		Tag:        dep.tagName(op.Tag),
		MaxSpeed:   dep.maxSpeed,
		MinStay:    dep.minStay,
		TTCap:      dep.ttCap,
	})
	var opened server.StreamStatus
	st, err := r.call(ctx, "stream_open", http.MethodPost, "/v1/stream", "application/json", body, &opened)
	if err != nil || st/100 != 2 || opened.ID == "" {
		return
	}
	if op.Subscribe {
		ready := make(chan struct{})
		r.sseWG.Add(1)
		go func() {
			defer r.sseWG.Done()
			subscribe(ctx, r.sseC, r.base, opened.ID, r.rec, &r.sse, ready)
		}()
		// Hold the readings until the subscriber is attached: an in-process
		// session can otherwise finish before the GET even lands.
		select {
		case <-ready:
		case <-ctx.Done():
		}
	}
	seq := dep.seqs[op.Tag]
	half := (len(seq)/op.Chunk + 1) / 2
	for c, i := 0, 0; i < len(seq); c, i = c+1, i+op.Chunk {
		end := i + op.Chunk
		if end > len(seq) {
			end = len(seq)
		}
		var chunkBody []byte
		contentType := "application/json"
		if r.cfg.Binary {
			chunkBody = server.EncodeStreamReadings(seq[i:end])
			contentType = server.ContentTypeBinary
		} else {
			chunkBody, _ = json.Marshal(server.StreamReadingsRequest{Readings: seq[i:end]})
		}
		st, err := r.call(ctx, "stream_readings", http.MethodPost,
			"/v1/stream/"+opened.ID+"/readings", contentType, chunkBody, nil)
		if err != nil || st/100 != 2 {
			break
		}
		if op.Smooth && c == half {
			// Mid-stream smooth: exercises the incremental path and emits a
			// smooth event for subscribers. Its prefix-length trajectory is
			// deliberately not added to the query targets (stay queries
			// draw t from the full duration).
			r.call(ctx, "stream_smooth", http.MethodPost,
				"/v1/stream/"+opened.ID+"/smooth", "application/json", nil, nil)
		}
	}
	var closed server.StreamCloseResponse
	if st, err := r.call(ctx, "stream_close", http.MethodDelete,
		"/v1/stream/"+opened.ID, "", nil, &closed); err == nil && st/100 == 2 && closed.Trajectory != nil {
		dep.addTarget(closed.Trajectory.ID)
	}
}
