package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// This file synthesizes the workload plan: K deployments x M tags x a mixed
// operation schedule, derived entirely from the seed so two runs with the
// same flags issue the identical workload (-dry-run prints the plan without
// touching a daemon, and the unit tests pin byte-identical synthesis).

// planConfig are the knobs the plan is derived from.
type planConfig struct {
	Seed            uint64
	Datasets        []string // base datasets, rotated across deployments
	Deployments     int
	Tags            int     // reading sequences synthesized per deployment
	ReadingDuration int     // seconds per synthesized sequence
	Rate            float64 // target operation issue rate per second
	Duration        time.Duration
	Batch           int // sequences per batch-clean op
	Chunk           int // readings per stream POST
}

func (c *planConfig) validate() error {
	if c.Deployments < 1 {
		return fmt.Errorf("rfidload: -deployments must be >= 1, got %d", c.Deployments)
	}
	if c.Tags < 1 {
		return fmt.Errorf("rfidload: -tags must be >= 1, got %d", c.Tags)
	}
	if c.ReadingDuration < 2 {
		return fmt.Errorf("rfidload: -reading-duration must be >= 2, got %d", c.ReadingDuration)
	}
	if c.Rate <= 0 {
		return fmt.Errorf("rfidload: -rate must be positive, got %g", c.Rate)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("rfidload: -duration must be positive, got %s", c.Duration)
	}
	if c.Batch < 1 {
		return fmt.Errorf("rfidload: -batch must be >= 1, got %d", c.Batch)
	}
	if c.Chunk < 1 {
		return fmt.Errorf("rfidload: -chunk must be >= 1, got %d", c.Chunk)
	}
	for _, name := range c.Datasets {
		if _, err := dataset.ConfigByName(name); err != nil {
			return fmt.Errorf("rfidload: %v", err)
		}
	}
	return nil
}

// Op kinds. Clean/batch/stream create trajectories; stay/pattern/top query
// ones created earlier in the run (or the per-deployment seed trajectory).
const (
	opClean   = "clean"
	opBatch   = "batch"
	opStream  = "stream"
	opStay    = "stay"
	opPattern = "pattern"
	opTop     = "top"
)

// opWeights is the workload mix, in the order Pick indexes it.
var opKinds = []string{opClean, opBatch, opStream, opStay, opPattern, opTop}
var opWeights = []float64{30, 8, 12, 20, 15, 15}

// deploymentPlan is one synthesized deployment: a base dataset re-seeded per
// deployment (distinct calibration and instance streams).
type deploymentPlan struct {
	Dataset string `json:"dataset"`
	Floors  int    `json:"floors"`
	Seed    uint64 `json:"seed"`
	Stream  uint64 `json:"stream"`
	Tags    int    `json:"tags"`
}

// opPlan is one scheduled operation. AtMs is the open-loop issue offset from
// the run start; the driver never waits for a previous op to finish before
// the next offset comes due.
type opPlan struct {
	AtMs      int64  `json:"atMs"`
	Kind      string `json:"kind"`
	Dep       int    `json:"dep"`
	Tag       int    `json:"tag,omitempty"`
	Span      int    `json:"span,omitempty"`      // batch: sequences per request
	Chunk     int    `json:"chunk,omitempty"`     // stream: readings per POST
	Subscribe bool   `json:"subscribe,omitempty"` // stream: attach an SSE subscriber
	Smooth    bool   `json:"smooth,omitempty"`    // stream: mid-stream smooth POST
	T         int    `json:"t,omitempty"`         // stay: query timestamp
	K         int    `json:"k,omitempty"`         // top: k
	Pattern   string `json:"pattern,omitempty"`
	QIndex    int    `json:"qIndex,omitempty"` // query: target selector (mod available)
}

// workloadPlan is the full deterministic plan.
type workloadPlan struct {
	Seed            uint64           `json:"seed"`
	Rate            float64          `json:"rate"`
	DurationSeconds float64          `json:"durationSeconds"`
	ReadingDuration int              `json:"readingDuration"`
	Deployments     []deploymentPlan `json:"deployments"`
	Ops             []opPlan         `json:"ops"`
}

// synthesizePlan derives the full plan from the config. Everything flows
// from one stats.RNG seeded by cfg.Seed, so the plan is a pure function of
// the config.
func synthesizePlan(cfg planConfig) (*workloadPlan, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed)
	p := &workloadPlan{
		Seed:            cfg.Seed,
		Rate:            cfg.Rate,
		DurationSeconds: cfg.Duration.Seconds(),
		ReadingDuration: cfg.ReadingDuration,
	}
	for i := 0; i < cfg.Deployments; i++ {
		name := cfg.Datasets[i%len(cfg.Datasets)]
		dcfg, err := dataset.ConfigByName(name)
		if err != nil {
			return nil, err
		}
		p.Deployments = append(p.Deployments, deploymentPlan{
			Dataset: name,
			Floors:  dcfg.Floors,
			Seed:    rng.Uint64(),
			Stream:  rng.Uint64() & 0xffff,
			Tags:    cfg.Tags,
		})
	}
	n := int(math.Ceil(cfg.Rate * cfg.Duration.Seconds()))
	span := cfg.Batch
	if span > cfg.Tags {
		span = cfg.Tags
	}
	for i := 0; i < n; i++ {
		op := opPlan{
			AtMs: int64(float64(i) * 1000 / cfg.Rate),
			Kind: opKinds[rng.Pick(opWeights)],
			Dep:  rng.Intn(cfg.Deployments),
		}
		switch op.Kind {
		case opClean:
			op.Tag = rng.Intn(cfg.Tags)
		case opBatch:
			op.Tag = rng.Intn(cfg.Tags)
			op.Span = span
		case opStream:
			op.Tag = rng.Intn(cfg.Tags)
			op.Chunk = cfg.Chunk
			op.Subscribe = rng.Bernoulli(0.5)
			op.Smooth = rng.Bernoulli(0.5)
		case opStay:
			op.QIndex = rng.Intn(1 << 20)
			op.T = rng.Intn(cfg.ReadingDuration)
		case opPattern:
			op.QIndex = rng.Intn(1 << 20)
			op.Pattern = synthPattern(rng, p.Deployments[op.Dep].Floors)
		case opTop:
			op.QIndex = rng.Intn(1 << 20)
			op.K = 1 + rng.Intn(3)
		}
		p.Ops = append(p.Ops, op)
	}
	return p, nil
}

// synthPattern draws a trajectory pattern over the synthetic building's
// location names ("? F2.L3 ?" or "? F0.corridor[3] ?").
func synthPattern(rng *stats.RNG, floors int) string {
	rooms := []string{"L1", "L2", "L3", "L4", "corridor", "stairs"}
	name := fmt.Sprintf("F%d.%s", rng.Intn(floors), rooms[rng.Intn(len(rooms))])
	if rng.Bernoulli(0.5) {
		return fmt.Sprintf("? %s ?", name)
	}
	return fmt.Sprintf("? %s[%d] ?", name, 2+rng.Intn(3))
}

// encodePlan renders the plan as stable, diffable JSON (the -dry-run output
// and the determinism contract: same seed, byte-identical bytes).
func encodePlan(p *workloadPlan) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(p); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// summarizePlan is the human one-liner printed above the dry-run dump and at
// run start.
func summarizePlan(p *workloadPlan) string {
	counts := map[string]int{}
	subs := 0
	for _, op := range p.Ops {
		counts[op.Kind]++
		if op.Subscribe {
			subs++
		}
	}
	parts := make([]string, 0, len(opKinds))
	for _, k := range opKinds {
		parts = append(parts, fmt.Sprintf("%s=%d", k, counts[k]))
	}
	return fmt.Sprintf("%d deployments x %d tags, %d ops over %.0fs at %g op/s (%s, sse=%d)",
		len(p.Deployments), p.Deployments[0].Tags, len(p.Ops), p.DurationSeconds, p.Rate,
		strings.Join(parts, " "), subs)
}
