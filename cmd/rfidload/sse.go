package main

import (
	"bufio"
	"context"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the harness's SSE subscriber: a well-behaved (always-reading)
// client of GET /v1/stream/{id}/events. Subscribers attach with
// Last-Event-ID: 0 so the hub replays the session's history — a subscriber
// that arrives after the first deltas still sees every event — and read
// until the close event. A hub eviction shows up either as the server's
// "dropped" comment or as an EOF before close; the harness distinguishes
// both from its own deadline so "zero evictions of well-behaved subscribers"
// is a checkable claim.

// sseOutcome is one subscriber's terminal state.
type sseOutcome int

const (
	sseClosed sseOutcome = iota // saw the session close event
	sseEvicted
	sseIncomplete // deadline or transport failure before close
)

// sseStats aggregates subscriber outcomes across the run.
type sseStats struct {
	mu          sync.Mutex
	subscribers int
	closed      int
	evicted     int
	incomplete  int
	events      atomic.Uint64
}

func (s *sseStats) add(outcome sseOutcome) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.subscribers++
	switch outcome {
	case sseClosed:
		s.closed++
	case sseEvicted:
		s.evicted++
	default:
		s.incomplete++
	}
}

func (s *sseStats) result() *SSEResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.subscribers == 0 {
		return nil
	}
	return &SSEResult{
		Subscribers: s.subscribers,
		Events:      s.events.Load(),
		Closed:      s.closed,
		Evicted:     s.evicted,
		Incomplete:  s.incomplete,
	}
}

// subscribe attaches one SSE subscriber to a session and consumes events
// until close, eviction, or ctx ends. The time from attach to the first
// event is recorded as sse_first_event; rec may be nil (external-session
// mode measures nothing but outcomes). ready, when non-nil, is closed as
// soon as the subscription is established (or has definitively failed), so a
// caller can hold the session's traffic until the subscriber is attached
// rather than racing it against a short-lived session.
func subscribe(ctx context.Context, client *http.Client, base, sessionID string, rec *recorder, stats *sseStats, ready chan<- struct{}) sseOutcome {
	outcome := sseIncomplete
	defer func() { stats.add(outcome) }()
	signal := func() {
		if ready != nil {
			close(ready)
			ready = nil
		}
	}
	defer signal()

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/stream/"+sessionID+"/events", nil)
	if err != nil {
		return outcome
	}
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set("Last-Event-ID", "0")
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return outcome
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return outcome
	}
	signal()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	first := true
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			stats.events.Add(1)
			if first {
				first = false
				if rec != nil {
					rec.record("sse_first_event", time.Since(start), http.StatusOK, nil, resp.Header.Get("X-Request-ID"))
				}
			}
			if strings.TrimPrefix(line, "event: ") == "close" {
				outcome = sseClosed
				return outcome
			}
		case strings.HasPrefix(line, ": dropped"):
			// The hub's parting comment to a subscriber it evicted.
			outcome = sseEvicted
			return outcome
		}
	}
	// EOF without a close event: the hub hung up on us. Unless our own
	// deadline fired, that is an eviction.
	if ctx.Err() == nil {
		outcome = sseEvicted
	}
	return outcome
}
