package main

import (
	"math"
	"testing"
)

func TestHistIndexBoundsRoundTrip(t *testing.T) {
	// Every bucket's bounds must contain exactly the values that index into
	// it, and consecutive buckets must tile the value range with no gaps.
	var prevHi int64
	for idx := 0; idx < 40*histSub; idx++ {
		lo, hi := histBounds(idx)
		if lo >= hi {
			t.Fatalf("bucket %d: empty range [%d, %d)", idx, lo, hi)
		}
		if idx > 0 && lo != prevHi {
			t.Fatalf("bucket %d: lower bound %d does not continue previous upper bound %d", idx, lo, prevHi)
		}
		prevHi = hi
		for _, v := range []int64{lo, hi - 1} {
			if got := histIndex(v); got != idx {
				t.Fatalf("histIndex(%d) = %d, want %d (bounds [%d, %d))", v, got, idx, lo, hi)
			}
		}
	}
}

func TestHistIndexExtremes(t *testing.T) {
	if got := histIndex(-5); got != 0 {
		t.Fatalf("negative values must clamp to bucket 0, got %d", got)
	}
	idx := histIndex(math.MaxInt64)
	if idx < 0 || idx >= histBuckets {
		t.Fatalf("histIndex(MaxInt64) = %d out of [0, %d)", idx, histBuckets)
	}
	lo, hi := histBounds(idx)
	if math.MaxInt64 < lo || (hi > lo && math.MaxInt64 >= hi && hi > 0) {
		t.Fatalf("MaxInt64 not inside its bucket [%d, %d)", lo, hi)
	}
}

func TestHistQuantileAccuracy(t *testing.T) {
	// Record 1..100000 ns; every quantile estimate must be within the
	// documented relative error (2^-(histSubBits+1), under 0.8%).
	var h hist
	const n = 100000
	for v := int64(1); v <= n; v++ {
		h.observe(v)
	}
	maxRel := 1.0 / float64(int64(2)<<histSubBits)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1.0} {
		want := q * n
		got := float64(h.quantile(q))
		if rel := math.Abs(got-want) / want; rel > maxRel {
			t.Errorf("quantile(%g) = %g, want ~%g (relative error %g > %g)", q, got, want, rel, maxRel)
		}
	}
	if got := h.max.Load(); got != n {
		t.Errorf("max = %d, want %d", got, n)
	}
	if mean := h.mean(); math.Abs(mean-(n+1)/2) > 1 {
		t.Errorf("mean = %g, want %g", mean, float64(n+1)/2)
	}
}

func TestHistEmpty(t *testing.T) {
	var h hist
	if got := h.quantile(0.99); got != 0 {
		t.Errorf("empty quantile = %d, want 0", got)
	}
	if got := h.mean(); got != 0 {
		t.Errorf("empty mean = %g, want 0", got)
	}
	cum := h.cumulative([]float64{0.001, 1})
	for i, c := range cum {
		if c != 0 {
			t.Errorf("empty cumulative[%d] = %d, want 0", i, c)
		}
	}
}

func TestHistCumulativeLadder(t *testing.T) {
	var h hist
	// 3 below 1ms, 2 between 1ms and 5ms, 1 above 5ms.
	for _, v := range []int64{100_000, 200_000, 900_000, 2_000_000, 4_000_000, 10_000_000} {
		h.observe(v)
	}
	cum := h.cumulative([]float64{0.001, 0.005})
	want := []uint64{3, 5, 6}
	for i := range want {
		if cum[i] != want[i] {
			t.Errorf("cumulative[%d] = %d, want %d (full: %v)", i, cum[i], want[i], cum)
		}
	}
}
