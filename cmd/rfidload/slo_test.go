package main

import (
	"strings"
	"testing"
)

func f(v float64) *float64 { return &v }

// resultWith builds a Result with one endpoint at the given percentiles and
// error counts.
func resultWith(name string, count uint64, errs4xx uint64, p99 float64) *Result {
	n := count
	return &Result{
		Throughput: 100,
		Endpoints: map[string]EndpointResult{
			name: {
				Count:     n,
				Errors:    map[string]uint64{"4xx": errs4xx, "5xx": 0, "transport": 0},
				ErrorRate: float64(errs4xx) / float64(n),
				P50Ms:     p99 / 2,
				P99Ms:     p99,
				P999Ms:    p99 * 2,
			},
		},
	}
}

func TestSLOEmptyHistogramIsViolationNotDivByZero(t *testing.T) {
	spec := &sloSpec{Endpoints: map[string]endpointSLO{
		"clean": {MaxP99Ms: f(100), MaxErrorRate: f(0)},
	}}
	// The result has no "clean" entry at all (buildResult omits zero-count
	// endpoints), which must yield a noSamples violation, not a panic or NaN.
	res := &Result{Endpoints: map[string]EndpointResult{}}
	vs := spec.evaluate(res)
	if len(vs) != 1 || vs[0].Rule != "noSamples" || vs[0].Endpoint != "clean" {
		t.Fatalf("want one noSamples violation for clean, got %+v", vs)
	}
	// Same for an entry that exists but recorded nothing.
	res.Endpoints["clean"] = EndpointResult{Count: 0}
	vs = spec.evaluate(res)
	if len(vs) != 1 || vs[0].Rule != "noSamples" {
		t.Fatalf("zero-count endpoint: want noSamples, got %+v", vs)
	}
}

func TestSLOExactlyAtThresholdPasses(t *testing.T) {
	spec := &sloSpec{Endpoints: map[string]endpointSLO{
		"clean": {MaxP99Ms: f(25)},
	}}
	if vs := spec.evaluate(resultWith("clean", 100, 0, 25)); len(vs) != 0 {
		t.Fatalf("p99 exactly at its ceiling must pass, got %+v", vs)
	}
	vs := spec.evaluate(resultWith("clean", 100, 0, 25.001))
	if len(vs) != 1 || vs[0].Rule != "maxP99Ms" {
		t.Fatalf("p99 above its ceiling must violate, got %+v", vs)
	}
}

func TestSLOErrorRateRounding(t *testing.T) {
	// 1 error in 3 requests = 0.3333... A spec ceiling written as a short
	// decimal 0.3333333333333333 must pass (float tolerance), a clearly lower
	// 0.33 must violate, and an exact 0 with zero errors must pass.
	spec := &sloSpec{Endpoints: map[string]endpointSLO{
		"clean": {MaxErrorRate: f(0.3333333333333333)},
	}}
	if vs := spec.evaluate(resultWith("clean", 3, 1, 1)); len(vs) != 0 {
		t.Fatalf("1/3 vs 0.3333333333333333 must pass, got %+v", vs)
	}
	spec.Endpoints["clean"] = endpointSLO{MaxErrorRate: f(0.33)}
	if vs := spec.evaluate(resultWith("clean", 3, 1, 1)); len(vs) != 1 {
		t.Fatalf("1/3 vs 0.33 must violate, got %+v", vs)
	}
	spec.Endpoints["clean"] = endpointSLO{MaxErrorRate: f(0)}
	if vs := spec.evaluate(resultWith("clean", 3, 0, 1)); len(vs) != 0 {
		t.Fatalf("0 errors vs maxErrorRate 0 must pass, got %+v", vs)
	}
	if vs := spec.evaluate(resultWith("clean", 1000000, 1, 1)); len(vs) != 1 {
		t.Fatalf("1/1e6 vs maxErrorRate 0 must violate, got %+v", vs)
	}
}

func TestSLOMinThroughput(t *testing.T) {
	spec := &sloSpec{MinThroughput: 50}
	res := &Result{Throughput: 49.9, Endpoints: map[string]EndpointResult{}}
	vs := spec.evaluate(res)
	if len(vs) != 1 || vs[0].Rule != "minThroughput" {
		t.Fatalf("want minThroughput violation, got %+v", vs)
	}
	res.Throughput = 50
	if vs := spec.evaluate(res); len(vs) != 0 {
		t.Fatalf("throughput exactly at the floor must pass, got %+v", vs)
	}
}

func TestSLOParseErrors(t *testing.T) {
	cases := map[string]string{
		"not JSON at all":  `SLO: be fast`,
		"unknown field":    `{"minThroughput": 1, "endpints": {}}`,
		"unknown endpoint": `{"endpoints": {"celan": {"maxP99Ms": 10}}}`,
		"negative value":   `{"endpoints": {"clean": {"maxP99Ms": -1}}}`,
		"negative floor":   `{"minThroughput": -5}`,
		"trailing data":    `{"minThroughput": 1} {"again": true}`,
		"gates nothing":    `{}`,
	}
	for name, body := range cases {
		if _, err := parseSLO("slo.json", []byte(body)); err == nil {
			t.Errorf("%s: malformed spec was accepted: %s", name, body)
		} else if !strings.Contains(err.Error(), "slo spec") {
			t.Errorf("%s: error does not read as a usage error: %v", name, err)
		}
	}
}

func TestSLOParseValid(t *testing.T) {
	spec, err := parseSLO("slo.json", []byte(`{
		"note": "calibrated 2026-08-08",
		"minThroughput": 10,
		"endpoints": {
			"clean": {"maxP99Ms": 250, "maxErrorRate": 0},
			"query_stay": {"maxP50Ms": 50, "maxP999Ms": 500}
		}
	}`))
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if spec.MinThroughput != 10 || len(spec.Endpoints) != 2 {
		t.Fatalf("spec parsed wrong: %+v", spec)
	}
	if ep := spec.Endpoints["clean"]; ep.MaxErrorRate == nil || *ep.MaxErrorRate != 0 {
		t.Fatal("explicit maxErrorRate 0 must survive parsing as a set pointer")
	}
	if ep := spec.Endpoints["clean"]; ep.MaxP50Ms != nil {
		t.Fatal("omitted rule must stay nil")
	}
}
