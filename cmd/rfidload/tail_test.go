package main

import (
	"testing"

	"repro/internal/obs"
)

func TestPhaseBreakdown(t *testing.T) {
	tr := &obs.TraceExport{
		ID: "req-1",
		Spans: []*obs.SpanExport{{
			Name:           "http.request",
			DurationMicros: 10_000, // 10 ms
			Spans: []*obs.SpanExport{
				{Name: "constraints.lookup", DurationMicros: 1_000},
				{Name: "core.build", DurationMicros: 6_000},
				{Name: "store.add", DurationMicros: 500},
			},
		}},
	}
	phases, dom := phaseBreakdown(tr)
	if dom != "core.build" {
		t.Fatalf("dominant phase = %q, want core.build", dom)
	}
	want := map[string]float64{
		"constraints.lookup": 1.0,
		"core.build":         6.0,
		"store.add":          0.5,
		"unattributed":       2.5,
	}
	if len(phases) != len(want) {
		t.Fatalf("phases = %v, want %v", phases, want)
	}
	for k, v := range want {
		if phases[k] != v {
			t.Fatalf("phase %s = %v ms, want %v", k, phases[k], v)
		}
	}

	// Repeated sibling spans (batch slots) sum into one phase.
	tr.Spans[0].Spans = append(tr.Spans[0].Spans, &obs.SpanExport{Name: "core.build", DurationMicros: 2_000})
	phases, _ = phaseBreakdown(tr)
	if phases["core.build"] != 8.0 {
		t.Fatalf("summed core.build = %v ms, want 8", phases["core.build"])
	}

	if p, d := phaseBreakdown(&obs.TraceExport{}); p != nil || d != "" {
		t.Fatalf("empty trace: %v %q", p, d)
	}
}

func TestDominantPhaseTieBreak(t *testing.T) {
	if got := dominantPhase(map[string]float64{"b": 2, "a": 2, "c": 1}); got != "a" {
		t.Fatalf("tie break = %q, want a (lexicographic)", got)
	}
	if got := dominantPhase(nil); got != "" {
		t.Fatalf("empty = %q", got)
	}
}
