package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"repro/internal/obs/hist"
	"repro/internal/server"
)

// endpointNames is the fixed endpoint taxonomy the recorder and the SLO
// vocabulary share. sse_first_event is the time from attaching an SSE
// subscriber to its first received event (replayed history counts).
var endpointNames = []string{
	"clean", "clean_batch",
	"stream_open", "stream_readings", "stream_smooth", "stream_close",
	"query_stay", "query_pattern", "query_top",
	"sse_first_event",
}

// Error classes, as they key EndpointResult.Errors.
const (
	errClass4xx       = "4xx"
	errClass5xx       = "5xx"
	errClassTransport = "transport"
)

// tailTopK is how many slowest requests per endpoint keep their request IDs
// for post-run trace attribution.
const tailTopK = 5

// slowReq is one of an endpoint's slowest requests, remembered by ID so the
// run can fetch its trace afterwards.
type slowReq struct {
	id     string
	dur    time.Duration
	status int
}

// endpointRec accumulates one endpoint's latencies and outcomes. The counters
// are atomics; the slowest-K list is the one mutex-guarded piece and is only
// touched when a request beats the current floor.
type endpointRec struct {
	hist      hist.Hist
	ok        atomic.Uint64
	c4xx      atomic.Uint64
	c5xx      atomic.Uint64
	transport atomic.Uint64

	slowMu sync.Mutex
	slow   []slowReq // descending by duration, len <= tailTopK
}

// noteSlow offers a finished request to the endpoint's slowest-K list.
func (ep *endpointRec) noteSlow(id string, d time.Duration, status int) {
	if id == "" {
		return
	}
	ep.slowMu.Lock()
	defer ep.slowMu.Unlock()
	if len(ep.slow) == tailTopK && d <= ep.slow[tailTopK-1].dur {
		return
	}
	ep.slow = append(ep.slow, slowReq{id: id, dur: d, status: status})
	sort.Slice(ep.slow, func(i, j int) bool { return ep.slow[i].dur > ep.slow[j].dur })
	if len(ep.slow) > tailTopK {
		ep.slow = ep.slow[:tailTopK]
	}
}

// recorder is the run-wide measurement sink.
type recorder struct {
	eps      map[string]*endpointRec // fixed key set, read-only after newRecorder
	requests atomic.Uint64
	errors   atomic.Uint64
	schedLag hist.Hist // dispatch delay behind the open-loop schedule
}

func newRecorder() *recorder {
	r := &recorder{eps: make(map[string]*endpointRec, len(endpointNames))}
	for _, name := range endpointNames {
		r.eps[name] = &endpointRec{}
	}
	return r
}

// record books one finished request. err != nil means the request never got
// an HTTP status (dial/timeout/read failure) and counts as transport. reqID
// is the daemon-assigned X-Request-ID (may be empty) used for tail
// attribution.
func (r *recorder) record(endpoint string, d time.Duration, status int, err error, reqID string) {
	ep := r.eps[endpoint]
	if ep == nil {
		panic("rfidload: unknown endpoint " + endpoint)
	}
	ep.hist.Observe(d.Nanoseconds())
	ep.noteSlow(reqID, d, status)
	r.requests.Add(1)
	switch {
	case err != nil:
		ep.transport.Add(1)
		r.errors.Add(1)
	case status >= 500:
		ep.c5xx.Add(1)
		r.errors.Add(1)
	case status >= 400:
		ep.c4xx.Add(1)
		r.errors.Add(1)
	default:
		ep.ok.Add(1)
	}
}

// EndpointResult is one endpoint's line of LOAD_RESULT.json.
type EndpointResult struct {
	Count     uint64            `json:"count"`
	Errors    map[string]uint64 `json:"errors"`
	ErrorRate float64           `json:"errorRate"`
	P50Ms     float64           `json:"p50Ms"`
	P99Ms     float64           `json:"p99Ms"`
	P999Ms    float64           `json:"p999Ms"`
	MeanMs    float64           `json:"meanMs"`
	MaxMs     float64           `json:"maxMs"`
	// Buckets is the cumulative distribution on internal/server's canonical
	// latency ladder (key = upper bound in seconds, plus "+Inf"), so these
	// line up with the daemon's own /metrics histograms.
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

// SlowRequest is one attributed tail request in LOAD_RESULT.json.
type SlowRequest struct {
	RequestID string `json:"requestId"`
	Ms        float64
	Status    int `json:"status"`
	// Phases breaks the request's wall time down by the top-level span phases
	// of its server-side trace (ms per phase; "unattributed" is the remainder
	// the spans do not cover). Empty when the trace was not retained.
	Phases        map[string]float64 `json:"phases,omitempty"`
	DominantPhase string             `json:"dominantPhase,omitempty"`
}

// MarshalJSON keeps the custom ms key lowercase without tagging every field.
func (s SlowRequest) MarshalJSON() ([]byte, error) {
	type alias struct {
		RequestID     string             `json:"requestId"`
		Ms            float64            `json:"ms"`
		Status        int                `json:"status"`
		Phases        map[string]float64 `json:"phases,omitempty"`
		DominantPhase string             `json:"dominantPhase,omitempty"`
	}
	return json.Marshal(alias(s))
}

// EndpointTail is one endpoint's tail-attribution block.
type EndpointTail struct {
	Slowest []SlowRequest `json:"slowest"`
	// DominantPhase is the phase that contributed the most total time across
	// the endpoint's attributed slow requests.
	DominantPhase string `json:"dominantPhase,omitempty"`
}

// SSEResult summarizes the run's event subscribers.
type SSEResult struct {
	Subscribers int    `json:"subscribers"`
	Events      uint64 `json:"events"`
	Closed      int    `json:"closed"`     // subscribers that saw the session close event
	Evicted     int    `json:"evicted"`    // dropped by the hub for falling behind
	Incomplete  int    `json:"incomplete"` // ended without close or eviction (timeout, transport)
}

// SLOResult records the gate's outcome inside LOAD_RESULT.json.
type SLOResult struct {
	Spec       string      `json:"spec"`
	Passed     bool        `json:"passed"`
	Violations []violation `json:"violations,omitempty"`
}

// Result is the machine-readable run report (LOAD_RESULT.json).
type Result struct {
	Seed              uint64  `json:"seed"`
	Daemon            string  `json:"daemon"`
	Rate              float64 `json:"rate"`
	DurationSeconds   float64 `json:"durationSeconds"`
	Workers           int     `json:"workers"`
	Deployments       int     `json:"deployments"`
	TagsPerDeployment int     `json:"tagsPerDeployment"`
	ReadingDuration   int     `json:"readingDuration"`

	PlannedOps     int     `json:"plannedOps"`
	DispatchedOps  int     `json:"dispatchedOps"`
	SkippedOps     int     `json:"skippedOps"` // scheduled but past the deadline when a worker freed up
	ElapsedSeconds float64 `json:"elapsedSeconds"`

	TotalRequests uint64  `json:"totalRequests"`
	TotalErrors   uint64  `json:"totalErrors"`
	Throughput    float64 `json:"throughput"` // completed requests per elapsed second

	SchedLagP99Ms float64 `json:"schedLagP99Ms"`
	SchedLagMaxMs float64 `json:"schedLagMaxMs"`

	Endpoints       map[string]EndpointResult `json:"endpoints"`
	TailAttribution map[string]*EndpointTail  `json:"tailAttribution,omitempty"`
	SSE             *SSEResult                `json:"sse,omitempty"`
	SLO             *SLOResult                `json:"slo,omitempty"`
}

func ms(ns int64) float64    { return float64(ns) / 1e6 }
func msF(ns float64) float64 { return ns / 1e6 }

// buildResult snapshots the recorder into a Result. Endpoints that saw no
// traffic are omitted (the SLO evaluator treats a named-but-absent endpoint
// as a violation).
func (r *recorder) buildResult(elapsed time.Duration) *Result {
	res := &Result{
		ElapsedSeconds: elapsed.Seconds(),
		TotalRequests:  r.requests.Load(),
		TotalErrors:    r.errors.Load(),
		Endpoints:      make(map[string]EndpointResult),
		SchedLagP99Ms:  ms(r.schedLag.Quantile(0.99)),
		SchedLagMaxMs:  ms(r.schedLag.Max()),
	}
	if elapsed > 0 {
		res.Throughput = float64(res.TotalRequests) / elapsed.Seconds()
	}
	bounds := server.LatencyBucketBounds()
	for name, ep := range r.eps {
		n := ep.hist.Count()
		if n == 0 {
			continue
		}
		errs := map[string]uint64{
			errClass4xx:       ep.c4xx.Load(),
			errClass5xx:       ep.c5xx.Load(),
			errClassTransport: ep.transport.Load(),
		}
		cum := ep.hist.Cumulative(bounds)
		buckets := make(map[string]uint64, len(cum))
		for i, b := range bounds {
			buckets[strconv.FormatFloat(b, 'g', -1, 64)] = cum[i]
		}
		buckets["+Inf"] = cum[len(bounds)]
		res.Endpoints[name] = EndpointResult{
			Count:     n,
			Errors:    errs,
			ErrorRate: float64(errs[errClass4xx]+errs[errClass5xx]+errs[errClassTransport]) / float64(n),
			P50Ms:     ms(ep.hist.Quantile(0.50)),
			P99Ms:     ms(ep.hist.Quantile(0.99)),
			P999Ms:    ms(ep.hist.Quantile(0.999)),
			MeanMs:    msF(ep.hist.Mean()),
			MaxMs:     ms(ep.hist.Max()),
		}
		// Attach buckets after the struct literal so the hot fields stay
		// first in the JSON for human readers.
		er := res.Endpoints[name]
		er.Buckets = buckets
		res.Endpoints[name] = er
	}
	return res
}

// slowest snapshots an endpoint's slowest-K list (descending).
func (r *recorder) slowest(endpoint string) []slowReq {
	ep := r.eps[endpoint]
	if ep == nil {
		return nil
	}
	ep.slowMu.Lock()
	defer ep.slowMu.Unlock()
	out := make([]slowReq, len(ep.slow))
	copy(out, ep.slow)
	return out
}

// writeTable renders the human per-endpoint report.
func writeTable(w io.Writer, res *Result) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "endpoint\tcount\t4xx\t5xx\ttransport\tp50 ms\tp99 ms\tp999 ms\tmean ms\tmax ms")
	names := make([]string, 0, len(res.Endpoints))
	for name := range res.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ep := res.Endpoints[name]
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\n",
			name, ep.Count,
			ep.Errors[errClass4xx], ep.Errors[errClass5xx], ep.Errors[errClassTransport],
			ep.P50Ms, ep.P99Ms, ep.P999Ms, ep.MeanMs, ep.MaxMs)
	}
	tw.Flush()
	fmt.Fprintf(w, "throughput %.1f req/s (%d requests, %d errors) over %.1fs; ops %d dispatched / %d skipped of %d planned; sched lag p99 %.1f ms max %.1f ms\n",
		res.Throughput, res.TotalRequests, res.TotalErrors, res.ElapsedSeconds,
		res.DispatchedOps, res.SkippedOps, res.PlannedOps,
		res.SchedLagP99Ms, res.SchedLagMaxMs)
	if res.SSE != nil {
		fmt.Fprintf(w, "sse: %d subscribers, %d events, %d closed, %d evicted, %d incomplete\n",
			res.SSE.Subscribers, res.SSE.Events, res.SSE.Closed, res.SSE.Evicted, res.SSE.Incomplete)
	}
	writeTailTable(w, res)
}

// writeTailTable renders the tail-attribution section: the slowest requests
// per endpoint with their dominant server-side phase.
func writeTailTable(w io.Writer, res *Result) {
	if len(res.TailAttribution) == 0 {
		return
	}
	names := make([]string, 0, len(res.TailAttribution))
	for name := range res.TailAttribution {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintln(w, "tail attribution (slowest requests, server-side phase breakdown):")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "endpoint\trequest id\tms\tstatus\tdominant phase\tphases")
	for _, name := range names {
		tail := res.TailAttribution[name]
		for _, s := range tail.Slowest {
			fmt.Fprintf(tw, "%s\t%s\t%.1f\t%d\t%s\t%s\n",
				name, s.RequestID, s.Ms, s.Status, orDash(s.DominantPhase), formatPhases(s.Phases))
		}
	}
	tw.Flush()
	for _, name := range names {
		if dp := res.TailAttribution[name].DominantPhase; dp != "" {
			fmt.Fprintf(w, "tail %s: dominant phase %s\n", name, dp)
		}
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// formatPhases renders a phase map as "name=ms" pairs, largest first.
func formatPhases(phases map[string]float64) string {
	if len(phases) == 0 {
		return "-"
	}
	type kv struct {
		k string
		v float64
	}
	pairs := make([]kv, 0, len(phases))
	for k, v := range phases {
		pairs = append(pairs, kv{k, v})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].v != pairs[j].v {
			return pairs[i].v > pairs[j].v
		}
		return pairs[i].k < pairs[j].k
	})
	var b []byte
	for i, p := range pairs {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, fmt.Sprintf("%s=%.1f", p.k, p.v)...)
	}
	return string(b)
}

// writeResult writes LOAD_RESULT.json.
func writeResult(path string, res *Result) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
