package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// This file is the declarative SLO gate: a JSON spec of per-endpoint latency
// ceilings, per-endpoint error-rate ceilings and a run-wide throughput
// floor, evaluated against a finished run's Result. CI commits one of these
// as SLO_BASELINE.json and fails the load-slo job on any violation.

// endpointSLO bounds one endpoint. Pointers distinguish "omitted" from an
// explicit 0 (maxErrorRate 0 means no errors tolerated at all).
type endpointSLO struct {
	MaxP50Ms     *float64 `json:"maxP50Ms,omitempty"`
	MaxP99Ms     *float64 `json:"maxP99Ms,omitempty"`
	MaxP999Ms    *float64 `json:"maxP999Ms,omitempty"`
	MaxErrorRate *float64 `json:"maxErrorRate,omitempty"`
}

// sloSpec is the on-disk spec (--slo file).
type sloSpec struct {
	// Note documents provenance and the re-baselining procedure for humans.
	Note string `json:"note,omitempty"`
	// MinThroughput is the minimum achieved request throughput (req/s)
	// across the whole run; 0 means unconstrained.
	MinThroughput float64 `json:"minThroughput,omitempty"`
	// Endpoints bounds individual endpoints. An endpoint named here that
	// saw no samples during the run is a violation, not a free pass.
	Endpoints map[string]endpointSLO `json:"endpoints,omitempty"`
}

// violation is one failed SLO rule, in both the human report and
// LOAD_RESULT.json.
type violation struct {
	Endpoint string  `json:"endpoint,omitempty"`
	Rule     string  `json:"rule"`
	Limit    float64 `json:"limit"`
	Actual   float64 `json:"actual"`
	Message  string  `json:"message"`
}

// loadSLO parses and validates a spec file. Errors are usage errors: the
// file is the gate's configuration, so a malformed one must fail loudly
// rather than silently gate nothing.
func loadSLO(path string) (*sloSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("rfidload: slo spec: %v", err)
	}
	return parseSLO(path, data)
}

func parseSLO(path string, data []byte) (*sloSpec, error) {
	var spec sloSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("rfidload: slo spec %s is malformed: %v", path, err)
	}
	// Trailing garbage after the JSON document is a malformed spec too.
	if dec.More() {
		return nil, fmt.Errorf("rfidload: slo spec %s is malformed: trailing data after the spec object", path)
	}
	if spec.MinThroughput < 0 {
		return nil, fmt.Errorf("rfidload: slo spec %s: minThroughput must be >= 0, got %g", path, spec.MinThroughput)
	}
	known := make(map[string]bool, len(endpointNames))
	for _, name := range endpointNames {
		known[name] = true
	}
	for name, ep := range spec.Endpoints {
		if !known[name] {
			return nil, fmt.Errorf("rfidload: slo spec %s: unknown endpoint %q (known: %v)", path, name, endpointNames)
		}
		for rule, v := range map[string]*float64{
			"maxP50Ms": ep.MaxP50Ms, "maxP99Ms": ep.MaxP99Ms,
			"maxP999Ms": ep.MaxP999Ms, "maxErrorRate": ep.MaxErrorRate,
		} {
			if v != nil && *v < 0 {
				return nil, fmt.Errorf("rfidload: slo spec %s: %s.%s must be >= 0, got %g", path, name, rule, *v)
			}
		}
	}
	if spec.MinThroughput == 0 && len(spec.Endpoints) == 0 {
		return nil, fmt.Errorf("rfidload: slo spec %s gates nothing: set minThroughput and/or endpoints", path)
	}
	return &spec, nil
}

// evaluate checks the result against the spec. Thresholds are inclusive: a
// p99 exactly at its ceiling passes, an error rate exactly at its ceiling
// passes (with a hair of float tolerance so 1/3 vs a JSON 0.333... literal
// does not flap on the last bit).
func (s *sloSpec) evaluate(res *Result) []violation {
	var out []violation
	if s.MinThroughput > 0 && res.Throughput < s.MinThroughput {
		out = append(out, violation{
			Rule: "minThroughput", Limit: s.MinThroughput, Actual: res.Throughput,
			Message: fmt.Sprintf("achieved throughput %.1f req/s is below the %.1f req/s floor",
				res.Throughput, s.MinThroughput),
		})
	}
	names := make([]string, 0, len(s.Endpoints))
	for name := range s.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ep := s.Endpoints[name]
		got, ok := res.Endpoints[name]
		if !ok || got.Count == 0 {
			// An empty histogram is a violation in its own right — the
			// workload was supposed to exercise this endpoint — and is
			// reported without ever dividing by the zero sample count.
			out = append(out, violation{
				Endpoint: name, Rule: "noSamples",
				Message: fmt.Sprintf("%s saw no samples; the gated workload did not exercise it", name),
			})
			continue
		}
		check := func(rule string, limit *float64, actual float64) {
			if limit == nil || actual <= *limit {
				return
			}
			out = append(out, violation{
				Endpoint: name, Rule: rule, Limit: *limit, Actual: actual,
				Message: fmt.Sprintf("%s %s %.3f exceeds the %.3f ceiling", name, rule, actual, *limit),
			})
		}
		check("maxP50Ms", ep.MaxP50Ms, got.P50Ms)
		check("maxP99Ms", ep.MaxP99Ms, got.P99Ms)
		check("maxP999Ms", ep.MaxP999Ms, got.P999Ms)
		if ep.MaxErrorRate != nil {
			errs := got.Errors["4xx"] + got.Errors["5xx"] + got.Errors["transport"]
			rate := float64(errs) / float64(got.Count)
			if rate > *ep.MaxErrorRate+1e-9 {
				out = append(out, violation{
					Endpoint: name, Rule: "maxErrorRate", Limit: *ep.MaxErrorRate, Actual: rate,
					Message: fmt.Sprintf("%s error rate %.4f (%d/%d) exceeds the %.4f ceiling",
						name, rate, errs, got.Count, *ep.MaxErrorRate),
				})
			}
		}
	}
	return out
}
