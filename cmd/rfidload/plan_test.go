package main

import (
	"bytes"
	"testing"
	"time"
)

func testPlanConfig() planConfig {
	return planConfig{
		Seed:            1,
		Datasets:        []string{"SYN1", "SYN2"},
		Deployments:     3,
		Tags:            6,
		ReadingDuration: 40,
		Rate:            50,
		Duration:        10 * time.Second,
		Batch:           4,
		Chunk:           20,
	}
}

func mustPlan(t *testing.T, cfg planConfig) []byte {
	t.Helper()
	p, err := synthesizePlan(cfg)
	if err != nil {
		t.Fatalf("synthesizePlan: %v", err)
	}
	data, err := encodePlan(p)
	if err != nil {
		t.Fatalf("encodePlan: %v", err)
	}
	return data
}

func TestPlanSeedDeterminism(t *testing.T) {
	// The determinism contract: same config, byte-identical plan bytes.
	a := mustPlan(t, testPlanConfig())
	b := mustPlan(t, testPlanConfig())
	if !bytes.Equal(a, b) {
		t.Fatalf("two syntheses with the same seed differ:\n%s\nvs\n%s", a, b)
	}
	cfg := testPlanConfig()
	cfg.Seed = 2
	if bytes.Equal(a, mustPlan(t, cfg)) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestPlanCoversAllOpKinds(t *testing.T) {
	p, err := synthesizePlan(testPlanConfig())
	if err != nil {
		t.Fatalf("synthesizePlan: %v", err)
	}
	if got := len(p.Ops); got != 500 {
		t.Fatalf("rate 50 x 10s should plan 500 ops, got %d", got)
	}
	counts := map[string]int{}
	var prevAt int64 = -1
	for _, op := range p.Ops {
		counts[op.Kind]++
		if op.AtMs < prevAt {
			t.Fatalf("schedule not monotone: %d after %d", op.AtMs, prevAt)
		}
		prevAt = op.AtMs
		if op.Dep < 0 || op.Dep >= 3 {
			t.Fatalf("op targets deployment %d of 3", op.Dep)
		}
	}
	for _, kind := range opKinds {
		if counts[kind] == 0 {
			t.Errorf("500-op plan never drew kind %q (counts %v)", kind, counts)
		}
	}
	if p.Deployments[0].Dataset != "SYN1" || p.Deployments[1].Dataset != "SYN2" || p.Deployments[2].Dataset != "SYN1" {
		t.Errorf("datasets should rotate SYN1,SYN2,SYN1: %+v", p.Deployments)
	}
}

func TestPlanValidation(t *testing.T) {
	for name, mutate := range map[string]func(*planConfig){
		"deployments": func(c *planConfig) { c.Deployments = 0 },
		"tags":        func(c *planConfig) { c.Tags = 0 },
		"rate":        func(c *planConfig) { c.Rate = 0 },
		"duration":    func(c *planConfig) { c.Duration = 0 },
		"dataset":     func(c *planConfig) { c.Datasets = []string{"NOPE"} },
	} {
		cfg := testPlanConfig()
		mutate(&cfg)
		if _, err := synthesizePlan(cfg); err == nil {
			t.Errorf("invalid %s config was accepted", name)
		}
	}
}

func TestDryRunByteIdentical(t *testing.T) {
	// The full CLI path: two -dry-run invocations with the same seed write
	// byte-identical plans to stdout, with no daemon involved.
	args := []string{"-dry-run", "-seed", "7", "-deployments", "2", "-tags", "4",
		"-rate", "10", "-duration", "3s", "-reading-duration", "30"}
	var a, b bytes.Buffer
	if err := run(args, &a); err != nil {
		t.Fatalf("dry run 1: %v", err)
	}
	if err := run(args, &b); err != nil {
		t.Fatalf("dry run 2: %v", err)
	}
	if a.Len() == 0 {
		t.Fatal("dry run wrote nothing")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two -dry-run invocations with the same seed differ")
	}
	var c bytes.Buffer
	if err := run(append(args, "-seed", "8"), &c); err != nil {
		t.Fatalf("dry run 3: %v", err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("-dry-run ignored the seed")
	}
}
