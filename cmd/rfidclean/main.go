// Command rfidclean cleans RFID reading logs produced by cmd/datagen: it
// rebuilds the dataset's prior and integrity constraints, conditions each
// reading sequence on the constraints (building the ct-graph), and answers
// queries over the cleaned data.
//
// Usage:
//
//	datagen -dataset SYN1 -duration 300 -count 2 -o in.json
//	rfidclean -in in.json -constraints DU+LT -stay 60,150 -pattern "? F0.L1[10] ?"
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/constraints"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rfidclean: ")

	var (
		in      = flag.String("in", "", "instance file from cmd/datagen (required)")
		selName = flag.String("constraints", "DU+LT+TT", "constraint set: DU, DU+LT or DU+LT+TT")
		stays   = flag.String("stay", "", "comma-separated timestamps for stay queries")
		pattern = flag.String("pattern", "", "trajectory-pattern query, e.g. \"? F0.L1[10] ?\"")
		top     = flag.Bool("top", true, "print the most probable trajectory summary")
		samples = flag.Int("samples", 0, "sample N valid trajectories and report location utilization")
		strict  = flag.Bool("strict-end", false, "use Definition 2's strict end-of-window latency semantics")
		render  = flag.Bool("render", false, "render each floor as ASCII art shaded by expected occupancy")
		workers = flag.Int("workers", 1, "build ct-graphs for the instances concurrently (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	file, err := dataset.Load(f)
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}
	sel, err := dataset.SelectionByName(*selName)
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := dataset.ConfigByName(file.Dataset)
	if err != nil {
		log.Fatal(err)
	}
	d, err := dataset.Build(file.Dataset, cfg)
	if err != nil {
		log.Fatal(err)
	}
	ic := d.Constraints(sel)
	mode := constraints.LenientEnd
	if *strict {
		mode = constraints.StrictEnd
	}

	// Build every instance's ct-graph first — concurrently when -workers
	// allows it — then report in input order.
	graphs, buildErrs := buildAll(file.Instances, d, ic, mode, *workers)

	for i, inst := range file.Instances {
		fmt.Printf("=== instance %d (%d s, %s, %s) ===\n", i, inst.Duration, file.Dataset, sel)
		if err := buildErrs[i]; err != nil {
			if errors.Is(err, core.ErrNoValidTrajectory) {
				fmt.Println("  readings are inconsistent with the constraints; nothing to clean")
				continue
			}
			log.Fatal(err)
		}
		g := graphs[i]
		st := g.Stats()
		fmt.Printf("  ct-graph: %d nodes, %d edges, ~%.1f KB\n", st.Nodes, st.Edges, float64(st.Bytes)/1024)

		eng := query.NewEngine(g, d.Plan.NumLocations())
		for _, tauStr := range splitNonEmpty(*stays) {
			tau, err := strconv.Atoi(strings.TrimSpace(tauStr))
			if err != nil {
				log.Fatalf("bad -stay timestamp %q", tauStr)
			}
			dist, err := eng.Stay(tau)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  stay t=%d: %s", tau, topK(dist, d, 3))
			if tau >= 0 && tau < len(inst.TruthLocations) {
				truth := inst.TruthLocations[tau]
				fmt.Printf("   [truth %s, accuracy %.3f]",
					d.Plan.Location(truth).Name, query.StayAccuracy(dist, truth))
			}
			fmt.Println()
		}

		if *pattern != "" {
			pat, err := query.ParsePattern(*pattern, func(name string) (int, error) {
				l, ok := d.Plan.LocationByName(name)
				if !ok {
					return 0, fmt.Errorf("unknown location %q", name)
				}
				return l.ID, nil
			})
			if err != nil {
				log.Fatal(err)
			}
			p, err := eng.Trajectory(pat)
			if err != nil {
				log.Fatal(err)
			}
			truthYes, err := query.Matches(pat, inst.TruthLocations)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  pattern %q: P(yes) = %.4f   [truth %v, accuracy %.3f]\n",
				*pattern, p, truthYes, query.TrajectoryAccuracy(p, truthYes))
		}

		if *top {
			locs, p := g.MostProbable()
			fmt.Printf("  most probable trajectory (p=%.3g): %s\n", p, runs(locs, d))
			correct := 0
			for t, l := range locs {
				if l == inst.TruthLocations[t] {
					correct++
				}
			}
			fmt.Printf("  viterbi step accuracy: %.3f\n", float64(correct)/float64(len(locs)))
		}

		if *render {
			eng2 := query.NewEngine(g, d.Plan.NumLocations())
			occ := make([]float64, d.Plan.NumLocations())
			for loc := range occ {
				v, err := eng2.ExpectedVisitTime(loc, 0, inst.Duration-1)
				if err != nil {
					log.Fatal(err)
				}
				occ[loc] = v
			}
			for f := 0; f < d.Plan.NumFloors(); f++ {
				var readerPts []geom.Point
				for _, rd := range d.Readers {
					if rd.Floor == f {
						readerPts = append(readerPts, rd.Pos)
					}
				}
				fmt.Print(viz.RenderFloor(d.Plan, f, viz.Options{
					Intensity: occ,
					Readers:   readerPts,
					Labels:    true,
				}))
			}
			fmt.Println("  " + viz.Legend("expected occupancy"))
		}

		if *samples > 0 {
			rng := stats.NewRNG(1)
			sec := make([]float64, d.Plan.NumLocations())
			for s := 0; s < *samples; s++ {
				for _, l := range g.Sample(rng) {
					sec[l]++
				}
			}
			fmt.Printf("  sampled utilization (%d samples): %s\n", *samples, topK(normalize(sec), d, 5))
		}
	}
}

// buildAll conditions every instance on the constraints, running up to
// workers builds concurrently (0 means GOMAXPROCS). Results are positional:
// graphs[i] / errs[i] belong to instances[i].
func buildAll(instances []dataset.FileInstance, d *dataset.Dataset, ic *constraints.Set, mode constraints.EndLatencyMode, workers int) ([]*core.Graph, []error) {
	graphs := make([]*core.Graph, len(instances))
	errs := make([]error, len(instances))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(instances) {
		workers = len(instances)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				ls, err := d.Prior.LSequence(instances[i].Readings)
				if err != nil {
					errs[i] = err
					continue
				}
				graphs[i], errs[i] = core.Build(ls, ic, &core.Options{EndLatency: mode})
			}
		}()
	}
	for i := range instances {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return graphs, errs
}

func splitNonEmpty(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func normalize(xs []float64) []float64 {
	total := 0.0
	for _, x := range xs {
		total += x
	}
	if total == 0 {
		return xs
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / total
	}
	return out
}

// topK renders the k most probable locations of a distribution.
func topK(dist []float64, d *dataset.Dataset, k int) string {
	type entry struct {
		loc int
		p   float64
	}
	var entries []entry
	for loc, p := range dist {
		if p > 0 {
			entries = append(entries, entry{loc, p})
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].p > entries[j].p })
	if len(entries) > k {
		entries = entries[:k]
	}
	parts := make([]string, len(entries))
	for i, e := range entries {
		parts[i] = fmt.Sprintf("%s %.3f", d.Plan.Location(e.loc).Name, e.p)
	}
	return strings.Join(parts, ", ")
}

// runs renders a trajectory as location runs.
func runs(locs []int, d *dataset.Dataset) string {
	var b strings.Builder
	start := 0
	for i := 1; i <= len(locs); i++ {
		if i == len(locs) || locs[i] != locs[start] {
			if start > 0 {
				b.WriteString(" -> ")
			}
			fmt.Fprintf(&b, "%s x%d", d.Plan.Location(locs[start]).Name, i-start)
			start = i
		}
	}
	return b.String()
}
