package main

import (
	"strings"
	"testing"

	"repro/internal/dataset"
)

func helperDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	cfg := dataset.SYN1()
	cfg.Floors = 1
	d, err := dataset.Build("TINY", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSplitNonEmpty(t *testing.T) {
	if got := splitNonEmpty(""); got != nil {
		t.Errorf("empty split = %v", got)
	}
	got := splitNonEmpty("1,2,3")
	if len(got) != 3 || got[1] != "2" {
		t.Errorf("split = %v", got)
	}
}

func TestNormalize(t *testing.T) {
	out := normalize([]float64{1, 3})
	if out[0] != 0.25 || out[1] != 0.75 {
		t.Errorf("normalize = %v", out)
	}
	zeros := normalize([]float64{0, 0})
	if zeros[0] != 0 || zeros[1] != 0 {
		t.Errorf("zero normalize = %v", zeros)
	}
}

func TestTopK(t *testing.T) {
	d := helperDataset(t)
	dist := make([]float64, d.Plan.NumLocations())
	dist[0], dist[1], dist[2] = 0.2, 0.5, 0.3
	s := topK(dist, d, 2)
	parts := strings.Split(s, ", ")
	if len(parts) != 2 {
		t.Fatalf("topK = %q", s)
	}
	if !strings.Contains(parts[0], "0.500") {
		t.Errorf("topK not sorted: %q", s)
	}
	if !strings.Contains(parts[0], d.Plan.Location(1).Name) {
		t.Errorf("topK missing location name: %q", s)
	}
}

func TestRuns(t *testing.T) {
	d := helperDataset(t)
	s := runs([]int{0, 0, 1, 1, 1, 0}, d)
	want := []string{
		d.Plan.Location(0).Name + " x2",
		d.Plan.Location(1).Name + " x3",
		d.Plan.Location(0).Name + " x1",
	}
	if s != strings.Join(want, " -> ") {
		t.Errorf("runs = %q", s)
	}
}
