package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	rfidclean "repro"
	"repro/internal/server"
)

// bootFleet boots n worker daemons in worker mode plus a router daemon
// fronting them, all through run() — the same code path the binary takes.
// Cleanups stop the router first, then the workers.
func bootFleet(t *testing.T, n int, workerCfg config) (routerBase string, workerBases []string) {
	t.Helper()
	workerBases = make([]string, n)
	for i := 0; i < n; i++ {
		cfg := workerCfg
		cfg.shardIndex, cfg.shardCount = i, n
		base, shutdown, runErr := bootDaemon(t, cfg)
		t.Cleanup(func() { stopDaemon(t, shutdown, runErr) })
		workerBases[i] = base
	}
	routerBase, shutdown, runErr := bootDaemon(t, config{shards: strings.Join(workerBases, ","), shardRetries: -1})
	t.Cleanup(func() { stopDaemon(t, shutdown, runErr) })
	return routerBase, workerBases
}

// register posts a deployment and returns its id.
func register(t *testing.T, base string, depJSON []byte) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/deployments", "application/json", bytes.NewReader(depJSON))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register status = %d: %s", resp.StatusCode, body)
	}
	var created map[string]string
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	return created["id"]
}

// fetchBytes GETs a URL and returns the raw body.
func fetchBytes(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestRouterShardedMatchesSingleNode: the tentpole acceptance check. The
// same cleans issued against a single node and against a 3-worker fleet
// behind the router produce byte-identical query results — stay, top and
// occupancy bodies — for every trajectory, and the routed listing is one
// id-ordered view over all shards.
func TestRouterShardedMatchesSingleNode(t *testing.T) {
	dep, sys := smallDeployment(t)
	var buf bytes.Buffer
	if err := dep.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	depJSON := buf.Bytes()

	singleBase, singleStop, singleErr := bootDaemon(t, config{})
	t.Cleanup(func() { stopDaemon(t, singleStop, singleErr) })
	routerBase, _ := bootFleet(t, 3, config{})

	singleDep := register(t, singleBase, depJSON)
	routedDep := register(t, routerBase, depJSON)

	// Six distinct objects' reading sequences.
	const objects = 6
	var sequences []rfidclean.ReadingSequence
	for i := 0; i < objects; i++ {
		rng := rfidclean.NewRNG(uint64(100 + i))
		truth, err := rfidclean.GenerateTrajectory(sys.Plan, rfidclean.NewGeneratorConfig(40), rng)
		if err != nil {
			t.Fatal(err)
		}
		sequences = append(sequences, rfidclean.GenerateReadings(truth, sys.Truth, rng))
	}

	clean := func(base, depID, tag string, readings rfidclean.ReadingSequence) server.CleanResponse {
		t.Helper()
		body, err := json.Marshal(server.CleanRequest{
			Deployment: depID, Tag: tag, Readings: readings, MaxSpeed: 2, MinStay: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+"/v1/clean", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("clean status = %d: %s", resp.StatusCode, raw)
		}
		var out server.CleanResponse
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	queries := []string{"/stay?t=10", "/stay?t=25", "/top?k=3", "/occupancy"}
	shardsUsed := map[int]bool{}
	for i, readings := range sequences {
		tag := fmt.Sprintf("obj-%d", i)
		sres := clean(singleBase, singleDep, tag, readings)
		rres := clean(routerBase, routedDep, tag, readings)
		if sres.Nodes != rres.Nodes || sres.Edges != rres.Edges || sres.Bytes != rres.Bytes {
			t.Fatalf("object %d: routed graph (%d nodes, %d edges, %d bytes) != single-node (%d, %d, %d)",
				i, rres.Nodes, rres.Edges, rres.Bytes, sres.Nodes, sres.Edges, sres.Bytes)
		}
		if n, ok := idNumSuffix(rres.ID); ok {
			shardsUsed[n%3] = true
		}
		for _, q := range queries {
			sCode, sBody := fetchBytes(t, singleBase+"/v1/trajectories/"+sres.ID+q)
			rCode, rBody := fetchBytes(t, routerBase+"/v1/trajectories/"+rres.ID+q)
			if sCode != http.StatusOK || rCode != http.StatusOK {
				t.Fatalf("object %d %s: status single=%d routed=%d", i, q, sCode, rCode)
			}
			if !bytes.Equal(sBody, rBody) {
				t.Fatalf("object %d %s: routed body differs from single-node\nsingle: %s\nrouted: %s", i, q, sBody, rBody)
			}
		}
	}
	if len(shardsUsed) < 2 {
		t.Fatalf("all tagged cleans landed on %d shard(s); the test needs cross-shard coverage", len(shardsUsed))
	}

	// Batch: per-slot results must line up positionally with a single
	// node's, and each routed slot's query bodies must match its
	// single-node counterpart byte for byte.
	batch := func(base, depID string) []server.BatchCleanResult {
		t.Helper()
		body, err := json.Marshal(server.BatchCleanRequest{
			Deployment: depID, Sequences: sequences, MaxSpeed: 2, MinStay: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+"/v1/clean/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch status = %d: %s", resp.StatusCode, raw)
		}
		var out []server.BatchCleanResult
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	sBatch := batch(singleBase, singleDep)
	rBatch := batch(routerBase, routedDep)
	if len(sBatch) != objects || len(rBatch) != objects {
		t.Fatalf("batch sizes: single=%d routed=%d, want %d", len(sBatch), len(rBatch), objects)
	}
	for i := range sBatch {
		if sBatch[i].Error != "" || rBatch[i].Error != "" {
			t.Fatalf("batch slot %d errored: single=%q routed=%q", i, sBatch[i].Error, rBatch[i].Error)
		}
		if sBatch[i].Nodes != rBatch[i].Nodes || sBatch[i].Edges != rBatch[i].Edges || sBatch[i].Bytes != rBatch[i].Bytes {
			t.Fatalf("batch slot %d: routed graph stats differ from single-node", i)
		}
		sCode, sBody := fetchBytes(t, singleBase+"/v1/trajectories/"+sBatch[i].ID+"/stay?t=10")
		rCode, rBody := fetchBytes(t, routerBase+"/v1/trajectories/"+rBatch[i].ID+"/stay?t=10")
		if sCode != http.StatusOK || rCode != http.StatusOK || !bytes.Equal(sBody, rBody) {
			t.Fatalf("batch slot %d stay body differs through the router", i)
		}
	}

	// The routed listing covers every shard's trajectories in one
	// id-ordered view.
	code, listing := fetchBytes(t, routerBase+"/v1/trajectories")
	if code != http.StatusOK {
		t.Fatalf("routed listing status = %d", code)
	}
	var rows []server.TrajectoryRow
	if err := json.Unmarshal(listing, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*objects {
		t.Fatalf("routed listing has %d rows, want %d", len(rows), 2*objects)
	}
	for i := 1; i < len(rows); i++ {
		a, _ := idNumSuffix(rows[i-1].ID)
		b, _ := idNumSuffix(rows[i].ID)
		if a >= b {
			t.Fatalf("routed listing out of order: %s before %s", rows[i-1].ID, rows[i].ID)
		}
	}

	// Aggregate health and per-shard metrics.
	code, health := fetchBytes(t, routerBase+"/healthz")
	if code != http.StatusOK || !bytes.Contains(health, []byte(`"status":"ok"`)) {
		t.Fatalf("router healthz = %d %s", code, health)
	}
	code, metrics := fetchBytes(t, routerBase+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("router metrics status = %d", code)
	}
	for shard := 0; shard < 3; shard++ {
		want := fmt.Sprintf(`rfidclean_router_requests_total{shard="%d",class="2xx"}`, shard)
		if !bytes.Contains(metrics, []byte(want)) {
			t.Errorf("router metrics missing per-shard series %q", want)
		}
	}
}

func idNumSuffix(id string) (int, bool) {
	n := 0
	seen := false
	for _, r := range id {
		if r >= '0' && r <= '9' {
			n = n*10 + int(r-'0')
			seen = true
		} else if seen {
			return 0, false
		}
	}
	return n, seen
}

// sseConn is one SSE subscription through the router.
type sseConn struct {
	resp *http.Response
	rd   *bufio.Reader
}

func openSSE(t *testing.T, base, sessID, lastEventID string) *sseConn {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v1/stream/"+sessID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("events status = %d: %s", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type = %q through the router", ct)
	}
	return &sseConn{resp: resp, rd: bufio.NewReader(resp.Body)}
}

// readUntil reads SSE lines until want distinct event ids have been seen,
// returning all raw lines read (including comments).
func (c *sseConn) readUntil(t *testing.T, wantEvents int) (lines []string, lastID string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	events := 0
	for events < wantEvents {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %d/%d events; lines so far: %q", events, wantEvents, lines)
		}
		line, err := c.rd.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE read: %v (lines so far: %q)", err, lines)
		}
		line = strings.TrimRight(line, "\n")
		lines = append(lines, line)
		if strings.HasPrefix(line, "id: ") {
			lastID = strings.TrimPrefix(line, "id: ")
			events++
		}
	}
	return lines, lastID
}

func (c *sseConn) close() { c.resp.Body.Close() }

// TestRouterSSEResume (satellite S3): Last-Event-ID resume works through
// the router hop — replayed events, and the ": resume gap" diagnostic when
// the resume point fell out of the worker's history ring, all survive
// forwarding.
func TestRouterSSEResume(t *testing.T) {
	dep, _ := smallDeployment(t)
	var buf bytes.Buffer
	if err := dep.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	// Workers keep only 4 events of resume history so the gap path is easy
	// to force.
	routerBase, _ := bootFleet(t, 3, config{eventHistory: 4})
	depID := register(t, routerBase, buf.Bytes())

	openBody, err := json.Marshal(server.StreamOpenRequest{Deployment: depID, Tag: "obj-sse", MaxSpeed: 2, MinStay: 5})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(routerBase+"/v1/stream", "application/json", bytes.NewReader(openBody))
	if err != nil {
		t.Fatal(err)
	}
	var opened map[string]any
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("stream open status = %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &opened); err != nil {
		t.Fatal(err)
	}
	sessID, _ := opened["id"].(string)
	if sessID == "" {
		t.Fatalf("stream open returned %s", raw)
	}

	feed := func(tm int) {
		t.Helper()
		body := fmt.Sprintf(`{"readings":[{"time":%d,"readers":[2]}]}`, tm)
		resp, err := http.Post(routerBase+"/v1/stream/"+sessID+"/readings", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("readings status = %d: %s", resp.StatusCode, b)
		}
	}

	// Live phase: subscribe, receive the first three deltas, note the last
	// event id, drop the connection.
	conn := openSSE(t, routerBase, sessID, "")
	tm := 0
	for ; tm < 3; tm++ {
		feed(tm)
	}
	lines, lastID := conn.readUntil(t, 3)
	conn.close()
	if lastID != "3" {
		t.Fatalf("last event id after 3 deltas = %q, want 3 (lines %q)", lastID, lines)
	}
	var connected bool
	for _, l := range lines {
		if strings.HasPrefix(l, ": connected") {
			connected = true
		}
	}
	if !connected {
		t.Fatalf("the hub's ': connected' comment did not survive the router hop: %q", lines)
	}

	// Two more events land while nobody is subscribed.
	for ; tm < 5; tm++ {
		feed(tm)
	}

	// Resume from id 3: events 4 and 5 replay, in order, with no gap
	// diagnostic — the history ring (4 entries) still holds them.
	conn = openSSE(t, routerBase, sessID, lastID)
	lines, lastID = conn.readUntil(t, 2)
	conn.close()
	var ids []string
	for _, l := range lines {
		if strings.HasPrefix(l, "id: ") {
			ids = append(ids, strings.TrimPrefix(l, "id: "))
		}
		if strings.HasPrefix(l, ": resume gap") {
			t.Fatalf("unexpected resume gap on an in-window resume: %q", lines)
		}
	}
	if strings.Join(ids, ",") != "4,5" || lastID != "5" {
		t.Fatalf("resumed events = %v (last %q), want [4 5]", ids, lastID)
	}

	// Push the history window past id 1, then resume from 1: the worker
	// flags the gap and the comment must reach the client through the
	// router.
	for ; tm < 11; tm++ {
		feed(tm)
	}
	conn = openSSE(t, routerBase, sessID, "1")
	lines, _ = conn.readUntil(t, 1)
	conn.close()
	var sawGap bool
	for _, l := range lines {
		if strings.HasPrefix(l, ": resume gap") {
			sawGap = true
		}
	}
	if !sawGap {
		t.Fatalf("': resume gap' comment did not survive the router hop: %q", lines)
	}
}
