// Command rfidcleand serves the cleaning framework over HTTP: register
// deployments (maps + readers), post reading sequences to be cleaned, and
// query the resulting conditioned trajectory graphs — the clean-once,
// query-many warehousing workflow of the paper's §5 remark.
//
// Usage:
//
//	rfidcleand -addr :8080
//
//	curl -X POST :8080/v1/deployments -d @deployment.json
//	curl -X POST :8080/v1/clean -d '{"deployment":"d1","readings":[...],"maxSpeed":2,"minStay":5}'
//	curl ':8080/v1/trajectories/t1/stay?t=42'
//	curl ':8080/v1/trajectories/t1/match?pattern=%3F+lab%5B30%5D+%3F'
//	curl ':8080/v1/trajectories/t1/top?k=3'
//	curl ':8080/v1/trajectories/t1/occupancy'
//	curl ':8080/healthz'
//	curl ':8080/metrics'
//
// Streaming ingestion sessions (live tracking) ride the same server:
//
//	curl -X POST :8080/v1/stream -d '{"deployment":"d1","maxSpeed":2,"minStay":5}'
//	curl -X POST :8080/v1/stream/s1/readings -d '{"readings":[{"time":0,"readers":[3]}]}'
//	curl ':8080/v1/stream/s1?top=3'
//	curl -N ':8080/v1/stream/s1/events'   # SSE: pushed delta/smooth/close events
//	curl -X POST :8080/v1/stream/s1/smooth
//	curl -X DELETE :8080/v1/stream/s1
//
// Event fan-out is tuned with -sse-buffer (events buffered per subscriber
// before a slow consumer is dropped), -sse-history (Last-Event-ID resume
// window), and -sse-heartbeat (idle-stream keepalive comments); cmd/rfidedge
// is the matching reader-side adapter that feeds sessions from hardware.
//
// With -demo, the server starts preloaded with the SYN1 deployment so the
// API can be exercised immediately. -max-body caps POST body sizes,
// -max-store-bytes puts the trajectory store under an LRU byte budget, and
// -pprof mounts net/http/pprof under /debug/pprof/. -max-sessions caps open
// streaming sessions (least-recently-active eviction past it),
// -session-ttl bounds how long an idle session lives, and
// -max-session-readings caps each session's smoothing buffer.
//
// With -data-dir the daemon is durable: deployments and cleaned trajectory
// graphs are persisted under the directory (snapshot + write-ahead log,
// compacted every -snapshot-interval) and recovered on the next boot, so a
// crash — even kill -9 — loses at most the last un-fsynced flush cycle.
// Without it, everything stays in memory and nothing touches the disk.
//
// The daemon also scales out horizontally. Worker mode gives a process a
// shard-scoped id namespace:
//
//	rfidcleand -addr :9001 -shard-index 0 -shard-count 3
//	rfidcleand -addr :9002 -shard-index 1 -shard-count 3
//	rfidcleand -addr :9003 -shard-index 2 -shard-count 3
//
// and router mode fronts the workers as one endpoint, consistent-hashing
// new work across them, forwarding id-addressed traffic to the owning
// shard, replicating deployments everywhere, and scatter-gathering
// cross-shard reads:
//
//	rfidcleand -shards http://localhost:9001,http://localhost:9002,http://localhost:9003
//
// The router's /healthz aggregates per-shard health and its /metrics
// exports per-shard request/error/latency series; see internal/shard and
// the README's "Running sharded" section.
//
// Observability: every response carries an X-Request-ID (echoed from the
// request or generated), access lines go to stderr as structured slog
// records at -log-level verbosity, each /v1/ request records a span trace
// served at /debug/traces (ring size -trace-buffer), and cleaned
// trajectories answer /v1/trajectories/{id}/explain with per-phase timings
// and per-constraint prune counts. A background flight recorder samples
// runtime and store health every -flight-interval into a -flight-buffer
// ring served at /debug/flight; the window is dumped to -data-dir on an
// eviction storm, a persistence error, or SIGQUIT (which keeps the daemon
// serving). On SIGINT/SIGTERM the server stops
// accepting connections, drains in-flight requests for up to -drain-timeout,
// then stops the session reaper before exiting.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"log/slog"

	rfidclean "repro"
	"repro/internal/dataset"
	"repro/internal/server"
	"repro/internal/shard"
)

// config carries the daemon's settings; main fills it from flags, tests fill
// it directly.
type config struct {
	addr               string
	demo               bool
	workers            int
	maxBody            int64
	maxStoreBytes      int64
	maxSessions        int
	sessionTTL         time.Duration
	maxSessionReadings int
	subscriberBuffer   int
	eventHistory       int
	sseHeartbeat       time.Duration
	pprof              bool
	drain              time.Duration
	logLevel           string
	traceBuffer        int
	dataDir            string
	snapshotInterval   time.Duration
	flightInterval     time.Duration
	flightBuffer       int

	// Worker mode: this process owns the id namespace n ≡ shardIndex
	// (mod shardCount). Zero values mean single-node.
	shardIndex int
	shardCount int

	// Router mode: front these worker base URLs instead of serving locally.
	shards       string
	shardTimeout time.Duration
	shardRetries int

	ready chan<- net.Addr // if non-nil, receives the bound listen address
}

// parseLogLevel maps the -log-level flag to a slog level.
func parseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("invalid -log-level %q (want debug, info, warn or error)", s)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("rfidcleand: ")

	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.BoolVar(&cfg.demo, "demo", false, "preload the SYN1 deployment as d1")
	flag.IntVar(&cfg.workers, "workers", 0, "batch-clean concurrency (0 = GOMAXPROCS)")
	flag.Int64Var(&cfg.maxBody, "max-body", server.DefaultMaxBodyBytes, "max POST body bytes (<= 0 disables the cap)")
	flag.Int64Var(&cfg.maxStoreBytes, "max-store-bytes", 0, "trajectory-store byte budget with LRU eviction (0 = unlimited)")
	flag.IntVar(&cfg.maxSessions, "max-sessions", server.DefaultMaxSessions, "max open streaming sessions; past it the least-recently-active session is evicted (<= 0 removes the cap)")
	flag.DurationVar(&cfg.sessionTTL, "session-ttl", server.DefaultSessionTTL, "idle streaming sessions are reaped after this long (<= 0 disables reaping)")
	flag.IntVar(&cfg.maxSessionReadings, "max-session-readings", server.DefaultMaxSessionReadings, "max readings a streaming session buffers for smoothing (<= 0 removes the cap)")
	flag.IntVar(&cfg.subscriberBuffer, "sse-buffer", server.DefaultSubscriberBuffer, "events buffered per SSE subscriber; a subscriber that falls this far behind is dropped")
	flag.IntVar(&cfg.eventHistory, "sse-history", server.DefaultEventHistory, "recent events each session retains for Last-Event-ID resume (<= 0 disables resume)")
	flag.DurationVar(&cfg.sseHeartbeat, "sse-heartbeat", server.DefaultSSEHeartbeat, "comment interval on idle SSE event streams (<= 0 disables heartbeats)")
	flag.BoolVar(&cfg.pprof, "pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.DurationVar(&cfg.drain, "drain-timeout", 10*time.Second, "how long to drain in-flight requests on shutdown")
	flag.StringVar(&cfg.logLevel, "log-level", "info", "structured log verbosity: debug, info, warn or error (debug includes /healthz and /metrics access lines)")
	flag.IntVar(&cfg.traceBuffer, "trace-buffer", 0, "recent request traces kept for GET /debug/traces (0 = default 256, negative disables tracing)")
	flag.StringVar(&cfg.dataDir, "data-dir", "", "persist deployments and trajectories under this directory and recover them on boot (empty = in-memory only)")
	flag.DurationVar(&cfg.snapshotInterval, "snapshot-interval", 0, "how often the trajectory write-ahead log is compacted into a snapshot (0 = default 1m, negative disables periodic compaction)")
	flag.DurationVar(&cfg.flightInterval, "flight-interval", 0, "flight-recorder sampling interval for GET /debug/flight (0 = default 1s, negative disables the recorder)")
	flag.IntVar(&cfg.flightBuffer, "flight-buffer", 0, "flight-recorder ring size in samples (0 = default 300)")
	flag.IntVar(&cfg.shardIndex, "shard-index", 0, "this worker's shard index in [0, -shard-count)")
	flag.IntVar(&cfg.shardCount, "shard-count", 0, "total worker shards; > 1 scopes this worker's ids to its shard-index residue class")
	flag.StringVar(&cfg.shards, "shards", "", "comma-separated worker base URLs; when set the daemon runs as a router over them instead of serving locally")
	flag.DurationVar(&cfg.shardTimeout, "shard-timeout", 0, "router: per-forwarded-request timeout (0 = 30s default)")
	flag.IntVar(&cfg.shardRetries, "shard-retries", -1, "router: retries per request on connection-level errors (-1 = default 2, 0 disables)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg); err != nil {
		log.Fatal(err)
	}
}

// run serves until ctx is cancelled, then shuts down gracefully: the
// listener closes immediately, in-flight requests get up to cfg.drain to
// finish, and only then does run return.
func run(ctx context.Context, cfg config) error {
	if cfg.shards != "" {
		return runRouter(ctx, cfg)
	}
	maxBody := cfg.maxBody
	if maxBody <= 0 {
		maxBody = -1 // Options treats 0 as "default"; negative disables
	}
	// The same normalization applies to the session knobs: a non-positive
	// flag means "no cap / no reaping", which Options spells negative.
	maxSessions := cfg.maxSessions
	if maxSessions <= 0 {
		maxSessions = -1
	}
	sessionTTL := cfg.sessionTTL
	if sessionTTL <= 0 {
		sessionTTL = -1
	}
	maxSessionReadings := cfg.maxSessionReadings
	if maxSessionReadings <= 0 {
		maxSessionReadings = -1
	}
	eventHistory := cfg.eventHistory
	if eventHistory <= 0 {
		eventHistory = -1
	}
	sseHeartbeat := cfg.sseHeartbeat
	if sseHeartbeat <= 0 {
		sseHeartbeat = -1
	}
	level, err := parseLogLevel(cfg.logLevel)
	if err != nil {
		return err
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	srv, err := server.Open(server.Options{
		ShardCount:         cfg.shardCount,
		ShardIndex:         cfg.shardIndex,
		Workers:            cfg.workers,
		MaxBodyBytes:       maxBody,
		MaxStoreBytes:      cfg.maxStoreBytes,
		MaxSessions:        maxSessions,
		SessionTTL:         sessionTTL,
		MaxSessionReadings: maxSessionReadings,
		SubscriberBuffer:   cfg.subscriberBuffer,
		EventHistory:       eventHistory,
		SSEHeartbeat:       sseHeartbeat,
		Logger:             logger,
		TraceBuffer:        cfg.traceBuffer,
		DataDir:            cfg.dataDir,
		SnapshotInterval:   cfg.snapshotInterval,
		FlightInterval:     cfg.flightInterval,
		FlightBuffer:       cfg.flightBuffer,
	})
	if err != nil {
		return err
	}
	defer srv.Close() // stop the session reaper and drain the WAL writer

	// SIGQUIT dumps the flight-recorder window to -data-dir and keeps
	// serving — the "what was it doing just now" probe for a live daemon.
	// (This replaces Go's default SIGQUIT stack-dump-and-exit.)
	quitc := make(chan os.Signal, 1)
	signal.Notify(quitc, syscall.SIGQUIT)
	defer signal.Stop(quitc)
	go func() {
		for range quitc {
			switch path, err := srv.DumpFlight("sigquit"); {
			case err != nil:
				log.Printf("SIGQUIT: flight dump failed: %v", err)
			case path == "":
				log.Printf("SIGQUIT: flight window noted in memory only (set -data-dir to write dumps)")
			default:
				log.Printf("SIGQUIT: flight window dumped to %s", path)
			}
		}
	}()

	if cfg.dataDir != "" {
		log.Printf("durable mode: persisting to %s", cfg.dataDir)
	}
	if cfg.shardCount > 1 {
		log.Printf("worker mode: shard %d of %d (ids ≡ %d mod %d)",
			cfg.shardIndex, cfg.shardCount, cfg.shardIndex, cfg.shardCount)
	}
	if cfg.demo {
		switch id, err := preloadSYN1(srv); {
		case err != nil:
			return err
		case id == "":
			log.Printf("SYN1 already registered (recovered from -data-dir)")
		default:
			log.Printf("preloaded SYN1 as deployment %s", id)
		}
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv)
	if cfg.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		log.Printf("pprof mounted at /debug/pprof/")
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	if cfg.ready != nil {
		cfg.ready <- ln.Addr()
	}
	log.Printf("listening on %s", ln.Addr())

	httpServer := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	// SSE event streams never finish on their own, so a graceful Shutdown
	// would otherwise hang on them for the whole drain timeout; this hook
	// pushes a terminal close event to every subscriber the moment the
	// drain starts, letting their handlers return promptly.
	httpServer.RegisterOnShutdown(srv.DrainSubscribers)
	errc := make(chan error, 1)
	go func() { errc <- httpServer.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down: draining in-flight requests (up to %s)", cfg.drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := httpServer.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// runRouter serves the sharding front-end: every request is forwarded to
// the worker fleet named by -shards, with the same graceful-shutdown
// contract as a worker (close the listener, drain in-flight requests).
func runRouter(ctx context.Context, cfg config) error {
	if cfg.demo {
		return errors.New("-demo is a worker-mode flag; preload one worker instead")
	}
	if cfg.dataDir != "" {
		return errors.New("-data-dir is a worker-mode flag; the router holds no state")
	}
	if cfg.shardCount > 1 {
		return errors.New("-shard-count and -shards are mutually exclusive (worker vs router mode)")
	}
	var bases []string
	for _, s := range strings.Split(cfg.shards, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		if !strings.Contains(s, "://") {
			s = "http://" + s
		}
		bases = append(bases, s)
	}
	if len(bases) == 0 {
		return errors.New("-shards must name at least one worker base URL")
	}
	level, err := parseLogLevel(cfg.logLevel)
	if err != nil {
		return err
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	rt, err := shard.NewRouter(shard.Options{
		Shards:       bases,
		Timeout:      cfg.shardTimeout,
		Retries:      cfg.shardRetries,
		MaxBodyBytes: cfg.maxBody,
		Logger:       logger,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	if cfg.ready != nil {
		cfg.ready <- ln.Addr()
	}
	log.Printf("router mode: listening on %s, fronting %d shards: %s",
		ln.Addr(), len(bases), strings.Join(bases, ", "))

	httpServer := &http.Server{
		Handler:           rt,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpServer.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down: draining in-flight requests (up to %s)", cfg.drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := httpServer.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// preloadSYN1 registers the built-in SYN1 dataset's deployment by posting it
// through the server's own API (keeping a single registration code path). It
// returns the new deployment's id, or "" when a deployment named SYN1 is
// already registered — the durable-restart case, where the recovered copy
// must keep its id so persisted trajectories stay attached to it.
func preloadSYN1(srv *server.Server) (string, error) {
	if syn1Registered(srv) {
		return "", nil
	}
	cfg := dataset.SYN1()
	d, err := dataset.Build("SYN1", cfg)
	if err != nil {
		return "", err
	}
	dep := &rfidclean.Deployment{
		Name:               "SYN1",
		Plan:               d.Plan,
		Readers:            d.Readers,
		Detection:          cfg.Detection,
		CellSize:           cfg.CellSize,
		CalibrationSamples: cfg.CalibrationSamples,
		Seed:               cfg.Seed,
	}
	var buf bytes.Buffer
	if err := dep.Encode(&buf); err != nil {
		return "", err
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/deployments", &buf)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		return "", bytesError(rec.Body.Bytes())
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
		return "", err
	}
	return created.ID, nil
}

// syn1Registered asks the server's own listing whether a deployment named
// SYN1 already exists.
func syn1Registered(srv *server.Server) bool {
	req := httptest.NewRequest(http.MethodGet, "/v1/deployments", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	var rows []struct {
		Name string `json:"name"`
	}
	if rec.Code != http.StatusOK || json.Unmarshal(rec.Body.Bytes(), &rows) != nil {
		return false
	}
	for _, r := range rows {
		if r.Name == "SYN1" {
			return true
		}
	}
	return false
}

type bytesError []byte

func (b bytesError) Error() string { return string(b) }
