// Command rfidcleand serves the cleaning framework over HTTP: register
// deployments (maps + readers), post reading sequences to be cleaned, and
// query the resulting conditioned trajectory graphs — the clean-once,
// query-many warehousing workflow of the paper's §5 remark.
//
// Usage:
//
//	rfidcleand -addr :8080
//
//	curl -X POST :8080/v1/deployments -d @deployment.json
//	curl -X POST :8080/v1/clean -d '{"deployment":"d1","readings":[...],"maxSpeed":2,"minStay":5}'
//	curl ':8080/v1/trajectories/t1/stay?t=42'
//	curl ':8080/v1/trajectories/t1/match?pattern=%3F+lab%5B30%5D+%3F'
//	curl ':8080/v1/trajectories/t1/top?k=3'
//	curl ':8080/v1/trajectories/t1/occupancy'
//
// With -demo, the server starts preloaded with the SYN1 deployment so the
// API can be exercised immediately.
package main

import (
	"bytes"
	"flag"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	rfidclean "repro"
	"repro/internal/dataset"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rfidcleand: ")

	var (
		addr    = flag.String("addr", ":8080", "listen address")
		demo    = flag.Bool("demo", false, "preload the SYN1 deployment as d1")
		workers = flag.Int("workers", 0, "batch-clean concurrency (0 = GOMAXPROCS)")
	)
	flag.Parse()

	srv := server.NewWithOptions(server.Options{Workers: *workers})
	if *demo {
		if err := preloadSYN1(srv); err != nil {
			log.Fatal(err)
		}
		log.Printf("preloaded SYN1 as deployment d1")
	}

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("listening on %s", *addr)
	log.Fatal(httpServer.ListenAndServe())
}

// preloadSYN1 registers the built-in SYN1 dataset's deployment by posting it
// through the server's own API (keeping a single registration code path).
func preloadSYN1(srv *server.Server) error {
	cfg := dataset.SYN1()
	d, err := dataset.Build("SYN1", cfg)
	if err != nil {
		return err
	}
	dep := &rfidclean.Deployment{
		Name:               "SYN1",
		Plan:               d.Plan,
		Readers:            d.Readers,
		Detection:          cfg.Detection,
		CellSize:           cfg.CellSize,
		CalibrationSamples: cfg.CalibrationSamples,
		Seed:               cfg.Seed,
	}
	var buf bytes.Buffer
	if err := dep.Encode(&buf); err != nil {
		return err
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/deployments", &buf)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		return bytesError(rec.Body.Bytes())
	}
	return nil
}

type bytesError []byte

func (b bytesError) Error() string { return string(b) }
