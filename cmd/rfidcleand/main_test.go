package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"

	rfidclean "repro"
	"repro/internal/server"
)

// smallDeployment builds a 3-location deployment small enough to register
// and clean in milliseconds.
func smallDeployment(t *testing.T) (*rfidclean.Deployment, *rfidclean.System) {
	t.Helper()
	b := rfidclean.NewMapBuilder()
	cor := b.AddLocation("corridor", rfidclean.Corridor, 0, rfidclean.RectWH(0, 0, 12, 3))
	lab := b.AddLocation("lab", rfidclean.Room, 0, rfidclean.RectWH(0, 3, 6, 5))
	office := b.AddLocation("office", rfidclean.Room, 0, rfidclean.RectWH(6, 3, 6, 5))
	b.AddDoor(cor, lab, rfidclean.Pt(3, 3), 1)
	b.AddDoor(cor, office, rfidclean.Pt(9, 3), 1)
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dep := &rfidclean.Deployment{
		Name: "shutdown-test",
		Plan: plan,
		Readers: []rfidclean.Reader{
			{ID: 0, Name: "r-lab", Floor: 0, Pos: rfidclean.Pt(3, 5.5)},
			{ID: 1, Name: "r-office", Floor: 0, Pos: rfidclean.Pt(9, 5.5)},
			{ID: 2, Name: "r-cor", Floor: 0, Pos: rfidclean.Pt(6, 1.5)},
		},
		Detection:          rfidclean.DefaultThreeState(),
		CellSize:           0.5,
		CalibrationSamples: 30,
		Seed:               5,
	}
	sys, err := dep.System()
	if err != nil {
		t.Fatal(err)
	}
	return dep, sys
}

// TestRunGracefulShutdown boots the daemon on an ephemeral port exactly as
// main wires it (signal.NotifyContext), fires a batch clean, delivers a real
// SIGTERM while it may still be in flight, and asserts the request completes
// and run returns cleanly.
func TestRunGracefulShutdown(t *testing.T) {
	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer cancel()
	ready := make(chan net.Addr, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, config{
			addr:  "127.0.0.1:0",
			drain: 30 * time.Second,
			ready: ready,
		})
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr.String()
	case err := <-runErr:
		t.Fatalf("run exited early: %v", err)
	}

	// Liveness.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}

	// Register a deployment and prepare a batch big enough to outlive the
	// shutdown trigger (the test stays correct even if it finishes first).
	dep, sys := smallDeployment(t)
	var buf bytes.Buffer
	if err := dep.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/deployments", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	var created map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	rng := rfidclean.NewRNG(9)
	seqs := make([]rfidclean.ReadingSequence, 16)
	for i := range seqs {
		truth, err := rfidclean.GenerateTrajectory(sys.Plan, rfidclean.NewGeneratorConfig(120), rng)
		if err != nil {
			t.Fatal(err)
		}
		seqs[i] = rfidclean.GenerateReadings(truth, sys.Truth, rng)
	}
	body, err := json.Marshal(server.BatchCleanRequest{
		Deployment: created["id"], Sequences: seqs, MaxSpeed: 2, MinStay: 5,
	})
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		status int
		slots  []server.BatchCleanResult
		err    error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/clean/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			resc <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var slots []server.BatchCleanResult
		err = json.NewDecoder(resp.Body).Decode(&slots)
		resc <- result{status: resp.StatusCode, slots: slots, err: err}
	}()

	// Wait until the server reports the batch in flight (best effort — a
	// fast machine may finish it before we observe it), then pull the plug.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mresp, err := http.Get(base + "/metrics")
		if err != nil {
			break
		}
		var out bytes.Buffer
		_, _ = out.ReadFrom(mresp.Body)
		mresp.Body.Close()
		// The scrape itself is not a /v1/ request, so any positive count is
		// the batch.
		if strings.Contains(out.String(), "rfidclean_inflight_requests 1") {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	res := <-resc
	if res.err != nil {
		t.Fatalf("in-flight batch failed across shutdown: %v", res.err)
	}
	if res.status != http.StatusOK {
		t.Fatalf("in-flight batch status = %d, want 200", res.status)
	}
	if len(res.slots) != len(seqs) {
		t.Fatalf("batch returned %d slots, want %d", len(res.slots), len(seqs))
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not return after shutdown")
	}

	// The listener must be closed now.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}

// TestRunShutdownWithStreamSession: the daemon shuts down cleanly while a
// streaming session (and therefore the idle reaper goroutine) is live — the
// deferred server.Close must drain the reaper, not hang or leak it.
func TestRunShutdownWithStreamSession(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan net.Addr, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, config{
			addr:       "127.0.0.1:0",
			drain:      5 * time.Second,
			sessionTTL: time.Minute,
			ready:      ready,
		})
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr.String()
	case err := <-runErr:
		t.Fatalf("run exited early: %v", err)
	}

	dep, _ := smallDeployment(t)
	var buf bytes.Buffer
	if err := dep.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/deployments", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	var created map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	open, err := json.Marshal(server.StreamOpenRequest{
		Deployment: created["id"], MaxSpeed: 2, MinStay: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/stream", "application/json", bytes.NewReader(open))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("stream open status = %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return with a live session reaper")
	}
}

// TestRunListenError: an unusable address surfaces as an error, not a hang.
func TestRunListenError(t *testing.T) {
	err := run(context.Background(), config{addr: "127.0.0.1:-1", drain: time.Second})
	if err == nil {
		t.Fatal("run accepted an invalid address")
	}
}

// TestPprofMount: with pprof enabled the index responds under /debug/pprof/.
func TestPprofMount(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan net.Addr, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, config{addr: "127.0.0.1:0", pprof: true, drain: time.Second, ready: ready})
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr.String()
	case err := <-runErr:
		t.Fatalf("run exited early: %v", err)
	}
	resp, err := http.Get(fmt.Sprintf("%s/debug/pprof/", base))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status = %d", resp.StatusCode)
	}
	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("run returned %v", err)
	}
}

// bootDaemon starts run() with the given config on an ephemeral port and
// returns the base URL, the cancel that triggers shutdown, and run's error
// channel.
func bootDaemon(t *testing.T, cfg config) (base string, shutdown context.CancelFunc, runErr chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	runErr = make(chan error, 1)
	cfg.addr = "127.0.0.1:0"
	if cfg.drain == 0 {
		cfg.drain = 10 * time.Second
	}
	cfg.ready = ready
	go func() { runErr <- run(ctx, cfg) }()
	select {
	case addr := <-ready:
		return "http://" + addr.String(), cancel, runErr
	case err := <-runErr:
		cancel()
		t.Fatalf("run exited early: %v", err)
		return "", nil, nil
	}
}

func stopDaemon(t *testing.T, shutdown context.CancelFunc, runErr chan error) {
	t.Helper()
	shutdown()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not return after shutdown")
	}
}

// TestRunDurableRestart: the daemon-level recovery loop. Boot with -data-dir
// and -demo, clean a trajectory against the preloaded SYN1 deployment, shut
// down, boot the same directory again — the deployment keeps its id (-demo
// must not re-register it), the trajectory still answers queries with the
// same bytes, and new ids do not collide.
func TestRunDurableRestart(t *testing.T) {
	dir := t.TempDir()
	base, shutdown, runErr := bootDaemon(t, config{demo: true, dataDir: dir})

	dep, sys := smallDeployment(t)
	var buf bytes.Buffer
	if err := dep.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/deployments", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	var created map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if created["id"] != "d2" {
		t.Fatalf("second deployment id = %s, want d2 (SYN1 is d1)", created["id"])
	}

	rng := rfidclean.NewRNG(13)
	truth, err := rfidclean.GenerateTrajectory(sys.Plan, rfidclean.NewGeneratorConfig(60), rng)
	if err != nil {
		t.Fatal(err)
	}
	readings := rfidclean.GenerateReadings(truth, sys.Truth, rng)
	body, err := json.Marshal(server.CleanRequest{
		Deployment: "d2", Readings: readings, MaxSpeed: 2, MinStay: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/clean", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var cleaned server.CleanResponse
	if err := json.NewDecoder(resp.Body).Decode(&cleaned); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("clean status = %d", resp.StatusCode)
	}

	stayURL := fmt.Sprintf("/v1/trajectories/%s/stay?t=30", cleaned.ID)
	resp, err = http.Get(base + stayURL)
	if err != nil {
		t.Fatal(err)
	}
	var before bytes.Buffer
	_, _ = before.ReadFrom(resp.Body)
	resp.Body.Close()

	stopDaemon(t, shutdown, runErr)

	base2, shutdown2, runErr2 := bootDaemon(t, config{demo: true, dataDir: dir})
	defer stopDaemon(t, shutdown2, runErr2)

	resp, err = http.Get(base2 + "/v1/deployments")
	if err != nil {
		t.Fatal(err)
	}
	var rows []struct {
		ID   string `json:"id"`
		Name string `json:"name"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(rows) != 2 || rows[0].ID != "d1" || rows[0].Name != "SYN1" || rows[1].ID != "d2" {
		t.Fatalf("recovered deployments = %+v, want SYN1 as d1 plus d2 (no -demo duplicate)", rows)
	}

	resp, err = http.Get(base2 + stayURL)
	if err != nil {
		t.Fatal(err)
	}
	var after bytes.Buffer
	_, _ = after.ReadFrom(resp.Body)
	code := resp.StatusCode
	resp.Body.Close()
	if code != http.StatusOK {
		t.Fatalf("recovered trajectory query status = %d", code)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatalf("stay answer changed across restart:\n  before: %s\n  after:  %s", before.Bytes(), after.Bytes())
	}

	resp, err = http.Post(base2+"/v1/clean", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var again server.CleanResponse
	if err := json.NewDecoder(resp.Body).Decode(&again); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if again.ID == cleaned.ID {
		t.Fatalf("fresh trajectory reused recovered id %s", again.ID)
	}
}
