package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro/internal/core
BenchmarkBuild-8             	     100	    120000 ns/op	   43210 B/op	     321 allocs/op
BenchmarkBuild-8             	     100	    110000 ns/op
BenchmarkTopK-8              	    5000	      2500.5 ns/op
BenchmarkFilterObserve       	   20000	       800 ns/op
PASS
ok  	repro/internal/core	1.234s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkBuild":         110000, // min across the two samples
		"BenchmarkTopK":          2500.5,
		"BenchmarkFilterObserve": 800, // no -N suffix is fine too
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %v, want %v", name, got[name], ns)
		}
	}
}

func TestCompare(t *testing.T) {
	base := map[string]float64{
		"BenchmarkBuild": 100000,
		"BenchmarkTopK":  1000,
		"BenchmarkGone":  500,
	}
	fresh := map[string]float64{
		"BenchmarkBuild": 125000, // +25%: inside a 30% threshold
		"BenchmarkTopK":  1400,   // +40%: regression
		"BenchmarkNew":   77,     // unbaselined: informational
	}
	entries, bad := compare(base, fresh, 0.30)
	if len(bad) != 2 || bad[0] != "BenchmarkGone" || bad[1] != "BenchmarkTopK" {
		t.Fatalf("bad = %v, want [BenchmarkGone BenchmarkTopK]", bad)
	}
	var out bytes.Buffer
	renderText(&out, entries)
	for _, needle := range []string{"REGRESSED", "MISSING", "BenchmarkNew"} {
		if !strings.Contains(out.String(), needle) {
			t.Errorf("report missing %q:\n%s", needle, out.String())
		}
	}
	verdicts := map[string]string{}
	for _, e := range entries {
		verdicts[e.Name] = e.Verdict
	}
	want := map[string]string{
		"BenchmarkBuild": "ok", "BenchmarkTopK": "regressed",
		"BenchmarkGone": "missing", "BenchmarkNew": "new",
	}
	for name, v := range want {
		if verdicts[name] != v {
			t.Errorf("%s verdict = %q, want %q", name, verdicts[name], v)
		}
	}

	// Tightening the threshold flips the +25% into a failure.
	if _, bad := compare(base, fresh, 0.20); len(bad) != 3 {
		t.Errorf("threshold 0.20: bad = %v, want 3 entries", bad)
	}
}

// TestRunRoundTrip drives the CLI end to end: write a baseline from bench
// output, compare an identical run (pass), then a degraded run (fail).
func TestRunRoundTrip(t *testing.T) {
	dir := t.TempDir()
	baselinePath := filepath.Join(dir, "baseline.json")

	var out bytes.Buffer
	err := run([]string{"-write", "-baseline", baselinePath, "-note", "unit test"},
		strings.NewReader(sampleBench), &out)
	if err != nil {
		t.Fatalf("write: %v", err)
	}

	out.Reset()
	err = run([]string{"-baseline", baselinePath}, strings.NewReader(sampleBench), &out)
	if err != nil {
		t.Fatalf("self-compare failed: %v\n%s", err, out.String())
	}

	slower := strings.ReplaceAll(sampleBench, "2500.5 ns/op", "9500.5 ns/op")
	out.Reset()
	err = run([]string{"-baseline", baselinePath}, strings.NewReader(slower), &out)
	if err == nil {
		t.Fatalf("3.8x slower TopK passed:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkTopK") {
		t.Errorf("error %q does not name the regressed benchmark", err)
	}

	// A bench run that silently drops a benchmark must fail too.
	dropped := strings.ReplaceAll(sampleBench, "BenchmarkTopK", "BenchmarkRenamed")
	if err := run([]string{"-baseline", baselinePath}, strings.NewReader(dropped), &bytes.Buffer{}); err == nil {
		t.Error("missing benchmark passed")
	}
}

// TestRunJSONReport: -json writes a machine-readable comparison, including
// (especially) when the guard trips.
func TestRunJSONReport(t *testing.T) {
	dir := t.TempDir()
	baselinePath := filepath.Join(dir, "baseline.json")
	jsonPath := filepath.Join(dir, "benchdiff.json")
	if err := run([]string{"-write", "-baseline", baselinePath},
		strings.NewReader(sampleBench), &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}

	// Passing comparison.
	if err := run([]string{"-baseline", baselinePath, "-json", jsonPath},
		strings.NewReader(sampleBench), &bytes.Buffer{}); err != nil {
		t.Fatalf("self-compare failed: %v", err)
	}
	var report benchReport
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if !report.Passed || len(report.Regressed) != 0 || len(report.Benchmarks) != 3 {
		t.Fatalf("passing report wrong: %+v", report)
	}
	if report.Baseline != baselinePath || report.Threshold != 0.30 {
		t.Fatalf("report provenance wrong: %+v", report)
	}

	// Failing comparison still writes the report before erroring.
	slower := strings.ReplaceAll(sampleBench, "2500.5 ns/op", "9500.5 ns/op")
	if err := run([]string{"-baseline", baselinePath, "-json", jsonPath},
		strings.NewReader(slower), &bytes.Buffer{}); err == nil {
		t.Fatal("regressed run passed")
	}
	data, err = os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("report must be written on a red gate: %v", err)
	}
	report = benchReport{}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	if report.Passed || len(report.Regressed) != 1 || report.Regressed[0] != "BenchmarkTopK" {
		t.Fatalf("failing report wrong: %+v", report)
	}
	for _, e := range report.Benchmarks {
		if e.Name == "BenchmarkTopK" {
			if e.Verdict != "regressed" || e.Delta == nil || *e.Delta < 2 {
				t.Fatalf("TopK entry wrong: %+v", e)
			}
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-baseline", "/nonexistent/baseline.json"},
		strings.NewReader(sampleBench), &bytes.Buffer{}); err == nil {
		t.Error("missing baseline file accepted")
	}
	if err := run(nil, strings.NewReader("no benchmarks here\n"), &bytes.Buffer{}); err == nil {
		t.Error("empty bench input accepted")
	}
	// os.Open error on -bench path.
	if err := run([]string{"-bench", "/nonexistent/fresh.txt"}, nil, &bytes.Buffer{}); err == nil {
		t.Error("missing bench file accepted")
	}
}

// TestWriteProducesStableJSON: the committed baseline should be readable and
// carry provenance fields.
func TestWriteProducesStableJSON(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "b.json")
	if err := run([]string{"-write", "-baseline", p, "-note", "n1"},
		strings.NewReader(sampleBench), &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{`"note": "n1"`, `"nsPerOp"`, `"BenchmarkBuild"`} {
		if !strings.Contains(string(data), needle) {
			t.Errorf("baseline JSON missing %q:\n%s", needle, data)
		}
	}
}
