// Command benchdiff compares `go test -bench` output against a committed
// baseline and fails when a benchmark regresses past a threshold. It is the
// CI bench-regression guard:
//
//	go test -run '^$' -bench '...' -benchtime=5x ./... > fresh.txt
//	benchdiff -baseline BENCH_BASELINE.json -bench fresh.txt
//
// exits 1 if any baseline benchmark is missing from the fresh run or is more
// than -threshold slower (default 0.30, i.e. +30% ns/op). Shared-runner
// noise is real, so the threshold is deliberately loose: the guard exists to
// catch order-of-magnitude accidents (a dropped cache, an accidental
// quadratic loop), not single-digit drift.
//
// To (re)generate the baseline from a bench run:
//
//	benchdiff -write -baseline BENCH_BASELINE.json -bench fresh.txt
//
// When several samples of the same benchmark appear (e.g. -count=3), the
// minimum is used — the least noisy estimate of the true cost.
//
// -json <file> additionally writes the comparison as machine-readable JSON
// (per-benchmark verdicts plus the regressed list), written before the exit
// verdict so CI can upload it as an artifact even when the guard trips.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
)

// baseline is the committed JSON document. NsPerOp is keyed by the benchmark
// name with the GOMAXPROCS suffix stripped (e.g. "BenchmarkBuild").
type baseline struct {
	// Note documents provenance for humans reading the committed file.
	Note    string             `json:"note,omitempty"`
	GoOS    string             `json:"goos,omitempty"`
	GoArch  string             `json:"goarch,omitempty"`
	NsPerOp map[string]float64 `json:"nsPerOp"`
}

// benchLine matches one result line of `go test -bench` output, capturing the
// name (sans -N processor suffix) and the ns/op figure.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+(?:[eE][+-]?\d+)?) ns/op`)

// parseBench extracts ns/op per benchmark from bench output, keeping the
// minimum across repeated samples.
func parseBench(r io.Reader) (map[string]float64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	start := 0
	for i := 0; i <= len(data); i++ {
		if i != len(data) && data[i] != '\n' {
			continue
		}
		line := string(data[start:i])
		start = i + 1
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchdiff: bad ns/op in %q: %v", line, err)
		}
		if prev, ok := out[m[1]]; !ok || ns < prev {
			out[m[1]] = ns
		}
	}
	return out, nil
}

// benchEntry is one benchmark's comparison in the -json report. BaselineNs
// is absent for "new" benchmarks, FreshNs and Delta for "missing" ones.
type benchEntry struct {
	Name       string   `json:"name"`
	BaselineNs *float64 `json:"baselineNs,omitempty"`
	FreshNs    *float64 `json:"freshNs,omitempty"`
	Delta      *float64 `json:"delta,omitempty"` // fresh/baseline - 1
	Verdict    string   `json:"verdict"`         // ok | regressed | missing | new
}

// benchReport is the machine-readable comparison (-json file), uploaded as a
// CI artifact next to the human log.
type benchReport struct {
	Baseline   string       `json:"baseline"`
	Threshold  float64      `json:"threshold"`
	GoOS       string       `json:"goos"`
	GoArch     string       `json:"goarch"`
	Passed     bool         `json:"passed"`
	Benchmarks []benchEntry `json:"benchmarks"`
	Regressed  []string     `json:"regressed,omitempty"` // names that regressed or went missing
}

// compare evaluates each baseline benchmark's fresh/base ratio, returning the
// sorted per-benchmark entries plus the names that regressed past the
// threshold or went missing.
func compare(base, fresh map[string]float64, threshold float64) (entries []benchEntry, bad []string) {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base[name]
		f, ok := fresh[name]
		if !ok {
			entries = append(entries, benchEntry{Name: name, BaselineNs: &b, Verdict: "missing"})
			bad = append(bad, name)
			continue
		}
		delta := f/b - 1
		verdict := "ok"
		if delta > threshold {
			verdict = "regressed"
			bad = append(bad, name)
		}
		ff, dd := f, delta
		entries = append(entries, benchEntry{Name: name, BaselineNs: &b, FreshNs: &ff, Delta: &dd, Verdict: verdict})
	}
	// New benchmarks are informational: they only guard once baselined.
	extra := make([]string, 0)
	for name := range fresh {
		if _, ok := base[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		f := fresh[name]
		entries = append(entries, benchEntry{Name: name, FreshNs: &f, Verdict: "new"})
	}
	return entries, bad
}

// renderText prints the human comparison log, sorted for stable CI output.
func renderText(w io.Writer, entries []benchEntry) {
	for _, e := range entries {
		switch e.Verdict {
		case "missing":
			fmt.Fprintf(w, "MISSING  %-40s baseline %.0f ns/op, absent from fresh run\n", e.Name, *e.BaselineNs)
		case "new":
			fmt.Fprintf(w, "new      %-40s %12.0f ns/op (not in baseline; re-run with -write to track)\n", e.Name, *e.FreshNs)
		case "regressed":
			fmt.Fprintf(w, "%-9s%-40s %12.0f -> %12.0f ns/op (%+.1f%%)\n",
				"REGRESSED", e.Name, *e.BaselineNs, *e.FreshNs, *e.Delta*100)
		default:
			fmt.Fprintf(w, "%-9s%-40s %12.0f -> %12.0f ns/op (%+.1f%%)\n",
				e.Verdict, e.Name, *e.BaselineNs, *e.FreshNs, *e.Delta*100)
		}
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stdout)
	baselinePath := fs.String("baseline", "BENCH_BASELINE.json", "baseline JSON path")
	benchPath := fs.String("bench", "-", "fresh `go test -bench` output ('-' = stdin)")
	write := fs.Bool("write", false, "write the baseline from the bench output instead of comparing")
	threshold := fs.Float64("threshold", 0.30, "max allowed fractional slowdown per benchmark")
	note := fs.String("note", "", "provenance note stored with -write")
	jsonPath := fs.String("json", "", "also write the comparison as machine-readable JSON here")
	if err := fs.Parse(args); err != nil {
		return err
	}

	in := stdin
	if *benchPath != "-" {
		f, err := os.Open(*benchPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	fresh, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(fresh) == 0 {
		return fmt.Errorf("benchdiff: no benchmark results in input")
	}

	if *write {
		doc := baseline{Note: *note, GoOS: runtime.GOOS, GoArch: runtime.GOARCH, NsPerOp: fresh}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d benchmarks to %s\n", len(fresh), *baselinePath)
		return nil
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		return err
	}
	var doc baseline
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("benchdiff: %s: %v", *baselinePath, err)
	}
	if len(doc.NsPerOp) == 0 {
		return fmt.Errorf("benchdiff: %s holds no benchmarks", *baselinePath)
	}
	entries, bad := compare(doc.NsPerOp, fresh, *threshold)
	renderText(stdout, entries)
	// The JSON report is written before the verdict is returned: on a red
	// gate the artifact is exactly what the investigation needs.
	if *jsonPath != "" {
		report := benchReport{
			Baseline: *baselinePath, Threshold: *threshold,
			GoOS: runtime.GOOS, GoArch: runtime.GOARCH,
			Passed: len(bad) == 0, Benchmarks: entries, Regressed: bad,
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *jsonPath)
	}
	if len(bad) > 0 {
		return fmt.Errorf("benchdiff: %d benchmark(s) regressed past %.0f%% or went missing: %v",
			len(bad), *threshold*100, bad)
	}
	fmt.Fprintf(stdout, "all %d baselined benchmarks within %.0f%%\n", len(doc.NsPerOp), *threshold*100)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
