// Command experiments regenerates every table and figure of the paper's
// evaluation section (§6) plus the ablation studies documented in DESIGN.md,
// printing text tables with the same series the paper plots.
//
// Usage:
//
//	experiments -scale quick            # all figures, bench-sized workloads
//	experiments -scale full -fig 8a     # the paper's workload for Fig. 8(a)
//	experiments -fig ablation           # ablations A1-A4
//
// Scales: quick (seconds), medium (minutes), full (the paper's §6.1 scale —
// hours). Shapes (linearity, orderings, accuracy trends) are preserved at
// every scale; absolute numbers grow with the workload.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/constraints"
	"repro/internal/dataset"
	"repro/internal/experiment"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		scale    = flag.String("scale", "quick", "workload scale: quick, medium or full")
		fig      = flag.String("fig", "all", "figure to regenerate: all, 8a, 8b, 8c, 9a, 9b, 9c, size, baseline, ablation")
		datasets = flag.String("datasets", "SYN1,SYN2", "comma-separated datasets")
	)
	flag.Parse()

	var params experiment.Params
	switch *scale {
	case "quick":
		params = experiment.Quick()
	case "medium":
		params = experiment.Medium()
	case "full":
		params = experiment.Full()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}

	names := strings.Split(*datasets, ",")
	built := make(map[string]*dataset.Dataset)
	get := func(name string) *dataset.Dataset {
		if d, ok := built[name]; ok {
			return d
		}
		cfg, err := dataset.ConfigByName(name)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		d, err := dataset.Build(name, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "built %s in %v (%d locations, %d readers, %d cells)\n",
			name, time.Since(start).Round(time.Millisecond), d.Plan.NumLocations(), len(d.Readers), d.Cells.NumCells())
		built[name] = d
		return d
	}
	want := func(id string) bool { return *fig == "all" || *fig == id }

	// Fig. 8(a)/(b) and §6.7 sizes share the cleaning-cost measurements.
	if want("8a") || want("8b") || want("size") {
		var all []experiment.CleaningResult
		for _, name := range names {
			if name == "SYN2" && !want("8b") && !want("size") && *fig != "all" {
				continue
			}
			results, err := experiment.CleaningCost(get(name), params)
			if err != nil {
				log.Fatal(err)
			}
			all = append(all, results...)
		}
		if want("8a") || want("8b") {
			render(experiment.CleaningTable(all))
		}
		if want("size") {
			render(experiment.GraphSizeTable(all))
		}
	}

	if want("8c") {
		var all []experiment.QueryCostResult
		for _, name := range names {
			results, err := experiment.QueryCost(get(name), params)
			if err != nil {
				log.Fatal(err)
			}
			all = append(all, results...)
		}
		render(experiment.QueryCostTable(all))
	}

	if want("9a") || want("9b") || want("9c") {
		var overall []experiment.AccuracyResult
		var byLen []experiment.AccuracyByLength
		for _, name := range names {
			o, l, err := experiment.AccuracyWithLengths(get(name), params)
			if err != nil {
				log.Fatal(err)
			}
			overall = append(overall, o...)
			byLen = append(byLen, l...)
		}
		if want("9a") || want("9b") {
			render(experiment.AccuracyTable(overall))
		}
		if want("9c") {
			// The paper reports Fig. 9(c) on SYN2; print every dataset
			// that was measured.
			render(experiment.AccuracyByLengthTable(byLen))
		}
	}

	if want("baseline") {
		for _, name := range names {
			results, err := experiment.BaselineComparison(get(name), params)
			if err != nil {
				log.Fatal(err)
			}
			render(experiment.BaselineTable(results))
		}
	}

	if want("ablation") {
		cfg, err := dataset.ConfigByName(names[0])
		if err != nil {
			log.Fatal(err)
		}
		a1, err := experiment.PriorFormulaAblation(cfg, names[0], params)
		if err != nil {
			log.Fatal(err)
		}
		render(experiment.PriorAblationTable(a1))

		a2, err := experiment.EndLatencyAblation(get(names[0]), params)
		if err != nil {
			log.Fatal(err)
		}
		render(experiment.EndLatencyAblationTable(a2))

		a3, err := experiment.MinProbAblation(cfg, names[0], params, []float64{0, 0.01, 0.05})
		if err != nil {
			log.Fatal(err)
		}
		render(experiment.MinProbAblationTable(a3))

		a4, err := experiment.OracleVsCTGraph(get(names[0]), []int{8, 10, 12, 14}, 3, 1<<22, constraints.LenientEnd)
		if err != nil {
			log.Fatal(err)
		}
		render(experiment.OracleAblationTable(a4))

		// A5 runs with uncapped TT horizons, which is expensive; scale
		// the duration with the requested workload.
		a5dur := 300
		if *scale == "quick" {
			a5dur = 120
		}
		a5, err := experiment.MapSizeAblation(a5dur, 2, []int{0, 15})
		if err != nil {
			log.Fatal(err)
		}
		render(experiment.MapSizeTable(a5))
	}
}

func render(t *experiment.Table) {
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
