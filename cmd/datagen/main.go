// Command datagen generates synthetic RFID trajectory datasets in the style
// of the paper's §6.1/§6.4: ground-truth trajectories over the built-in SYN1
// (4-floor) or SYN2 (8-floor) building, plus the noisy RFID readings they
// produce. Output is JSON consumable by cmd/rfidclean.
//
// Usage:
//
//	datagen -dataset SYN1 -duration 300 -count 5 -o instances.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	rfidclean "repro"
	"repro/internal/dataset"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")

	var (
		name       = flag.String("dataset", "SYN1", "built-in dataset: SYN1 or SYN2")
		duration   = flag.Int("duration", 300, "trajectory duration in seconds")
		count      = flag.Int("count", 5, "number of trajectories")
		stream     = flag.Uint64("stream", 1, "generation stream (varies the instances)")
		out        = flag.String("o", "-", "output file (- for stdout)")
		fullPoints = flag.Bool("points", false, "include full (x, y, floor) ground-truth positions")
		deployment = flag.Bool("deployment", false, "emit the dataset's deployment JSON (for cmd/rfidcleand) instead of instances")
		encStream  = flag.Bool("encode-stream", false, "emit one instance's readings as an application/x-rfidclean binary frame (for POSTing to a stream session)")
	)
	flag.Parse()

	cfg, err := dataset.ConfigByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	if *duration <= 0 || *count <= 0 {
		log.Fatal("duration and count must be positive")
	}
	d, err := dataset.Build(*name, cfg)
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	if *deployment {
		dep := &rfidclean.Deployment{
			Name:               *name,
			Plan:               d.Plan,
			Readers:            d.Readers,
			Detection:          cfg.Detection,
			CellSize:           cfg.CellSize,
			CalibrationSamples: cfg.CalibrationSamples,
			Seed:               cfg.Seed,
		}
		if err := dep.Encode(w); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "datagen: wrote %s deployment (%d locations, %d readers)\n",
			*name, d.Plan.NumLocations(), len(d.Readers))
		return
	}
	instances, err := d.Generate(*duration, *count, *stream)
	if err != nil {
		log.Fatal(err)
	}
	if *encStream {
		buf := server.EncodeStreamReadings(instances[0].Readings)
		if _, err := w.Write(buf); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "datagen: wrote %d readings as one %d-byte binary stream frame\n",
			len(instances[0].Readings), len(buf))
		return
	}
	if err := dataset.Save(w, *name, instances, *fullPoints); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d instances of %d s over %s (%d locations, %d readers)\n",
		*count, *duration, *name, d.Plan.NumLocations(), len(d.Readers))
}
