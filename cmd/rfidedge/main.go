// Command rfidedge bridges RFID reader hardware to a rfidcleand daemon: the
// missing first hop of the cleaning pipeline. It speaks a go-feig-style
// reader API on one side — poll GET /scan for the latest inventory, or
// subscribe to the reader's GET /events/ eventsource — and the daemon's
// streaming-session API on the other, so tag sightings flow from an antenna
// into a live cleaning session without any client glue.
//
// Usage:
//
//	rfidedge -daemon http://cleaner:8080 -reader http://feig:1666 -deployment d1 \
//	         -max-speed 2 -min-stay 5
//
// The adapter opens one streaming session, then batches scan reports into
// StreamReadingsRequest POSTs (at most -batch readings per request, flushed
// at least every -flush). Timestamps are assigned by the edge in arrival
// order — reading N is second N — which is exactly the dense timeline the
// cleaning model expects. With -binary the readings travel as the compact
// application/x-rfidclean frame codec instead of JSON.
//
// Failure handling is built for flaky warehouse networks:
//
//   - network errors and 5xx answers retry with exponential backoff
//     (-backoff to -backoff-max, at most -max-attempts tries per batch);
//   - 410 Gone (the session was reaped, evicted, or the daemon restarted)
//     re-opens a fresh session and replays every reading sent so far before
//     continuing, so the cleaned trajectory never loses its prefix;
//   - 409 Conflict (a retried POST that had in fact landed) consults the
//     session's reading count and trims the already-accepted prefix.
//
// On SIGINT/SIGTERM the pending batch is flushed and — unless -close=false —
// the session is closed with a final smooth, leaving the finished trajectory
// queryable under /v1/trajectories/{id}; the reader running dry (a stub
// reporting done) ends the same way.
//
// For demos and CI, -stub-reader starts an embedded synthetic reader (see
// stub.go) serving a generated SYN1/SYN2 trajectory over the same /scan,
// /events/ and /.status API, and points the adapter at it.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	rfidclean "repro"
	"repro/internal/server"
)

// config carries the adapter's settings; main fills it from flags, tests
// fill it directly.
type config struct {
	daemon      string
	reader      string
	deployment  string
	maxSpeed    float64
	minStay     int
	ttCap       int
	beam        int
	mode        string // poll | events
	poll        time.Duration
	batch       int
	flushEvery  time.Duration
	binary      bool
	closeOnExit bool
	backoffMin  time.Duration
	backoffMax  time.Duration
	maxAttempts int // per batch; <= 0 retries until the context ends

	stubAddr     string
	stubDataset  string
	stubDuration int
	stubStream   uint64
	stubInterval time.Duration
}

// scanReport is one reader answer: which antennas saw the tracked tag. Time
// is the reader's own tick counter, used only to discard stale polls; the
// edge assigns the session timeline itself. Done signals the reader has
// nothing further (stub readers; real hardware never sends it).
type scanReport struct {
	Time    int   `json:"time"`
	Readers []int `json:"readers"`
	Done    bool  `json:"done,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("rfidedge: ")

	var cfg config
	flag.StringVar(&cfg.daemon, "daemon", "http://127.0.0.1:8080", "rfidcleand base URL")
	flag.StringVar(&cfg.reader, "reader", "", "reader base URL (go-feig-style /scan + /events/ API); defaults to the embedded stub when -stub-reader is set")
	flag.StringVar(&cfg.deployment, "deployment", "d1", "deployment id the session cleans against")
	flag.Float64Var(&cfg.maxSpeed, "max-speed", 2, "object max speed (m/s) for TT inference")
	flag.IntVar(&cfg.minStay, "min-stay", 5, "minimum stay (s) for LT inference")
	flag.IntVar(&cfg.ttCap, "tt-cap", 0, "TT horizon cap (0 = uncapped)")
	flag.IntVar(&cfg.beam, "beam", 0, "session beam width (0 = exact filtering)")
	flag.StringVar(&cfg.mode, "mode", "poll", "how to consume the reader: poll (GET /scan) or events (GET /events/ eventsource)")
	flag.DurationVar(&cfg.poll, "poll", 250*time.Millisecond, "poll interval in poll mode")
	flag.IntVar(&cfg.batch, "batch", 16, "max readings per POST to the daemon")
	flag.DurationVar(&cfg.flushEvery, "flush", 500*time.Millisecond, "max time a reading waits before being POSTed")
	flag.BoolVar(&cfg.binary, "binary", false, "send readings as application/x-rfidclean binary frames instead of JSON")
	flag.BoolVar(&cfg.closeOnExit, "close", true, "close the session (with a final smooth) on exit")
	flag.DurationVar(&cfg.backoffMin, "backoff", 100*time.Millisecond, "initial retry backoff")
	flag.DurationVar(&cfg.backoffMax, "backoff-max", 5*time.Second, "retry backoff cap")
	flag.IntVar(&cfg.maxAttempts, "max-attempts", 10, "attempts per batch before giving up (<= 0 retries forever)")
	flag.StringVar(&cfg.stubAddr, "stub-reader", "", "serve an embedded synthetic reader on this address and feed from it")
	flag.StringVar(&cfg.stubDataset, "stub-dataset", "SYN1", "dataset the stub reader walks: SYN1 or SYN2")
	flag.IntVar(&cfg.stubDuration, "stub-duration", 120, "trajectory seconds the stub reader serves")
	flag.Uint64Var(&cfg.stubStream, "stub-stream", 1, "generation stream for the stub trajectory")
	flag.DurationVar(&cfg.stubInterval, "stub-interval", 50*time.Millisecond, "event pacing of the stub reader's eventsource")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg); err != nil {
		log.Fatal(err)
	}
}

// run feeds the daemon until the reader runs dry or ctx is cancelled, then
// flushes and (by default) closes the session with a final smooth.
func run(ctx context.Context, cfg config) error {
	if cfg.batch < 1 {
		cfg.batch = 1
	}
	if cfg.backoffMin <= 0 {
		cfg.backoffMin = 100 * time.Millisecond
	}
	if cfg.backoffMax < cfg.backoffMin {
		cfg.backoffMax = cfg.backoffMin
	}
	if cfg.mode != "poll" && cfg.mode != "events" {
		return fmt.Errorf("invalid -mode %q (want poll or events)", cfg.mode)
	}
	if cfg.stubAddr != "" {
		stub, err := newStubReader(cfg.stubDataset, cfg.stubDuration, cfg.stubStream, cfg.stubInterval)
		if err != nil {
			return fmt.Errorf("stub reader: %w", err)
		}
		ln, err := net.Listen("tcp", cfg.stubAddr)
		if err != nil {
			return fmt.Errorf("stub reader: %w", err)
		}
		stubSrv := &http.Server{Handler: stub, ReadHeaderTimeout: 10 * time.Second}
		go stubSrv.Serve(ln)
		defer stubSrv.Close()
		log.Printf("stub reader: %d %s readings on http://%s", stub.total(), cfg.stubDataset, ln.Addr())
		if cfg.reader == "" {
			cfg.reader = "http://" + ln.Addr().String()
		}
	}
	if cfg.reader == "" {
		return errors.New("one of -reader or -stub-reader is required")
	}
	cfg.daemon = strings.TrimRight(cfg.daemon, "/")
	cfg.reader = strings.TrimRight(cfg.reader, "/")

	e := &edge{cfg: cfg, client: &http.Client{Timeout: 30 * time.Second}}
	if err := e.openSession(ctx); err != nil {
		return err
	}
	log.Printf("opened session %s (deployment %s) against %s", e.sessionID, cfg.deployment, cfg.daemon)

	scans := make(chan scanReport, 64)
	srcErr := make(chan error, 1)
	go func() {
		defer close(scans)
		srcErr <- e.consume(ctx, scans)
	}()

	flush := time.NewTicker(cfg.flushEvery)
	defer flush.Stop()
	var pending []rfidclean.Reading
	running := true
	for running {
		select {
		case rep, ok := <-scans:
			if !ok {
				running = false
				break
			}
			pending = append(pending, rfidclean.Reading{Time: e.next, Readers: rfidclean.NewReaderSet(rep.Readers...)})
			e.next++
			if len(pending) >= cfg.batch {
				if err := e.send(ctx, pending); err != nil {
					return err
				}
				pending = nil
			}
		case <-flush.C:
			if len(pending) > 0 {
				if err := e.send(ctx, pending); err != nil {
					return err
				}
				pending = nil
			}
		case <-ctx.Done():
			running = false
		}
	}

	// The signal context may already be dead; the final flush and close get
	// their own grace window so a clean shutdown still lands the tail.
	finCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if len(pending) > 0 {
		if err := e.send(finCtx, pending); err != nil {
			return fmt.Errorf("final flush: %w", err)
		}
	}
	if err := <-srcErr; err != nil && !errors.Is(err, context.Canceled) {
		return fmt.Errorf("reader: %w", err)
	}
	log.Printf("fed %d readings to session %s", len(e.history), e.sessionID)
	if cfg.closeOnExit {
		if err := e.closeSession(finCtx); err != nil {
			return err
		}
	}
	return nil
}

// edge is the adapter's state: the live session id, the edge-owned timeline
// counter, and every reading the daemon has accepted (the replay buffer for
// session re-open on 410).
type edge struct {
	cfg       config
	client    *http.Client
	sessionID string
	next      int // next timestamp to assign
	history   []rfidclean.Reading
}

// consume pulls scan reports from the reader into scans until the reader is
// done or ctx ends.
func (e *edge) consume(ctx context.Context, scans chan<- scanReport) error {
	if e.cfg.mode == "events" {
		return e.consumeEvents(ctx, scans)
	}
	return e.consumePoll(ctx, scans)
}

// consumePoll drives the reader in go-feig polling mode: GET /scan on a
// fixed cadence, skipping reports whose reader tick has not advanced.
func (e *edge) consumePoll(ctx context.Context, scans chan<- scanReport) error {
	ticker := time.NewTicker(e.cfg.poll)
	defer ticker.Stop()
	last := -1
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, e.cfg.reader+"/scan", nil)
		if err != nil {
			return err
		}
		resp, err := e.client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			log.Printf("reader poll: %v (will retry)", err)
			continue
		}
		var rep scanReport
		err = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&rep)
		resp.Body.Close()
		if err != nil {
			log.Printf("reader poll: bad scan body: %v (will retry)", err)
			continue
		}
		if rep.Done {
			return nil
		}
		if rep.Time >= 0 && rep.Time <= last {
			continue // inventory unchanged since the previous poll
		}
		last = rep.Time
		select {
		case scans <- rep:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// consumeEvents subscribes to the reader's eventsource and forwards every
// scan event, reconnecting with backoff when the stream drops.
func (e *edge) consumeEvents(ctx context.Context, scans chan<- scanReport) error {
	// Event streams are long-lived by design; the per-request timeout of the
	// batching client would sever them mid-subscription.
	client := &http.Client{}
	backoff := e.cfg.backoffMin
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, e.cfg.reader+"/events/", nil)
		if err != nil {
			return err
		}
		req.Header.Set("Accept", "text/event-stream")
		resp, err := client.Do(req)
		if err == nil && resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			err = fmt.Errorf("eventsource status %d", resp.StatusCode)
		}
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			log.Printf("reader eventsource: %v (reconnect in %s)", err, backoff)
			if !sleep(ctx, backoff) {
				return ctx.Err()
			}
			backoff = nextBackoff(backoff, e.cfg.backoffMax)
			continue
		}
		backoff = e.cfg.backoffMin
		done, err := e.readEventStream(ctx, resp.Body, scans)
		resp.Body.Close()
		if done || err != nil {
			return err
		}
		log.Printf("reader eventsource ended; reconnecting")
	}
}

// readEventStream parses one SSE connection, forwarding scan events until
// the stream ends. done reports a terminal done event (stub readers).
func (e *edge) readEventStream(ctx context.Context, body io.Reader, scans chan<- scanReport) (done bool, err error) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	event, data := "", ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if event == "done" {
				return true, nil
			}
			if event == "scan" && data != "" {
				var rep scanReport
				if jsonErr := json.Unmarshal([]byte(data), &rep); jsonErr != nil {
					log.Printf("reader eventsource: bad scan payload: %v", jsonErr)
				} else if rep.Done {
					return true, nil
				} else {
					select {
					case scans <- rep:
					case <-ctx.Done():
						return false, ctx.Err()
					}
				}
			}
			event, data = "", ""
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			if data != "" {
				data += "\n"
			}
			data += strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		}
		// id: and comment lines are irrelevant to the scan feed.
	}
	if ctx.Err() != nil {
		return false, ctx.Err()
	}
	return false, nil // connection dropped; caller reconnects
}

// openSession opens (or re-opens) a streaming session, retrying transient
// failures — the daemon may still be booting when the edge starts.
func (e *edge) openSession(ctx context.Context) error {
	body, err := json.Marshal(server.StreamOpenRequest{
		Deployment: e.cfg.deployment,
		MaxSpeed:   e.cfg.maxSpeed,
		MinStay:    e.cfg.minStay,
		TTCap:      e.cfg.ttCap,
		Beam:       e.cfg.beam,
	})
	if err != nil {
		return err
	}
	backoff := e.cfg.backoffMin
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, e.cfg.daemon+"/v1/stream", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := e.client.Do(req)
		if err == nil {
			code, respBody := drainResponse(resp)
			switch {
			case code == http.StatusCreated:
				var created struct {
					ID string `json:"id"`
				}
				if err := json.Unmarshal(respBody, &created); err != nil || created.ID == "" {
					return fmt.Errorf("open session: undecodable answer %q", respBody)
				}
				e.sessionID = created.ID
				return nil
			case retryableStatus(code):
				err = fmt.Errorf("open session: daemon answered %d: %s", code, respBody)
			default:
				return fmt.Errorf("open session: daemon answered %d: %s", code, respBody)
			}
		}
		if e.cfg.maxAttempts > 0 && attempt >= e.cfg.maxAttempts {
			return fmt.Errorf("open session: giving up after %d attempts: %w", attempt, err)
		}
		log.Printf("%v (retry in %s)", err, backoff)
		if !sleep(ctx, backoff) {
			return ctx.Err()
		}
		backoff = nextBackoff(backoff, e.cfg.backoffMax)
	}
}

// send delivers one batch, surviving network errors (backoff retry), daemon
// restarts and session loss (410 → re-open and replay the full history), and
// duplicate delivery after a retried POST (409 → trim what already landed).
func (e *edge) send(ctx context.Context, batch []rfidclean.Reading) error {
	backoff := e.cfg.backoffMin
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		code, body, err := e.postReadings(ctx, batch)
		if err == nil {
			switch {
			case code == http.StatusOK:
				e.history = append(e.history, batch...)
				return nil
			case code == http.StatusGone:
				log.Printf("session %s is gone (410); re-opening and replaying %d readings",
					e.sessionID, len(e.history)+len(batch))
				if err := e.openSession(ctx); err != nil {
					return err
				}
				log.Printf("opened session %s (deployment %s) against %s", e.sessionID, e.cfg.deployment, e.cfg.daemon)
				batch = append(append([]rfidclean.Reading(nil), e.history...), batch...)
				e.history = nil
				continue // a fresh session deserves a fresh first attempt
			case code == http.StatusConflict:
				// A retried POST that had in fact landed: ask the session
				// how far it got and drop the accepted prefix.
				n, statErr := e.sessionReadings(ctx)
				if statErr != nil {
					err = fmt.Errorf("409 then status check failed: %w", statErr)
					break
				}
				trimmed := batch[:0]
				for _, rd := range batch {
					if rd.Time < n {
						e.history = append(e.history, rd)
					} else {
						trimmed = append(trimmed, rd)
					}
				}
				if len(trimmed) == 0 {
					return nil
				}
				if len(trimmed) == len(batch) {
					return fmt.Errorf("daemon rejected readings (409) without having them: %s", body)
				}
				batch = trimmed
				continue
			case retryableStatus(code):
				err = fmt.Errorf("daemon answered %d: %s", code, body)
			default:
				return fmt.Errorf("daemon rejected readings (%d): %s", code, body)
			}
		}
		if e.cfg.maxAttempts > 0 && attempt >= e.cfg.maxAttempts {
			return fmt.Errorf("send: giving up after %d attempts: %w", attempt, err)
		}
		log.Printf("send: %v (retry in %s)", err, backoff)
		if !sleep(ctx, backoff) {
			return ctx.Err()
		}
		backoff = nextBackoff(backoff, e.cfg.backoffMax)
	}
}

// postReadings performs one readings POST in the configured codec.
func (e *edge) postReadings(ctx context.Context, batch []rfidclean.Reading) (int, []byte, error) {
	var (
		body []byte
		ct   string
		err  error
	)
	if e.cfg.binary {
		body = server.EncodeStreamReadings(batch)
		ct = server.ContentTypeBinary
	} else {
		body, err = json.Marshal(server.StreamReadingsRequest{Readings: batch})
		if err != nil {
			return 0, nil, err
		}
		ct = "application/json"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		e.cfg.daemon+"/v1/stream/"+e.sessionID+"/readings", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", ct)
	if e.cfg.binary {
		req.Header.Set("Accept", server.ContentTypeBinary)
	}
	resp, err := e.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	code, respBody := drainResponse(resp)
	return code, respBody, nil
}

// sessionReadings asks the session how many readings it has accepted.
func (e *edge) sessionReadings(ctx context.Context) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, e.cfg.daemon+"/v1/stream/"+e.sessionID, nil)
	if err != nil {
		return 0, err
	}
	resp, err := e.client.Do(req)
	if err != nil {
		return 0, err
	}
	code, body := drainResponse(resp)
	if code != http.StatusOK {
		return 0, fmt.Errorf("session status %d: %s", code, body)
	}
	var st server.StreamStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return 0, err
	}
	return st.Readings, nil
}

// closeSession closes the session with a final smooth and logs the stored
// trajectory handle. A 410 means someone beat us to it — not an error worth
// failing a clean shutdown over.
func (e *edge) closeSession(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, e.cfg.daemon+"/v1/stream/"+e.sessionID, nil)
	if err != nil {
		return err
	}
	resp, err := e.client.Do(req)
	if err != nil {
		return fmt.Errorf("close session: %w", err)
	}
	code, body := drainResponse(resp)
	switch code {
	case http.StatusOK:
		var out server.StreamCloseResponse
		if err := json.Unmarshal(body, &out); err == nil && out.Trajectory != nil {
			log.Printf("closed session %s; smoothed trajectory %s (%d nodes, %d edges)",
				e.sessionID, out.Trajectory.ID, out.Trajectory.Nodes, out.Trajectory.Edges)
		} else {
			log.Printf("closed session %s", e.sessionID)
		}
		return nil
	case http.StatusGone:
		log.Printf("session %s already closed", e.sessionID)
		return nil
	default:
		return fmt.Errorf("close session: daemon answered %d: %s", code, body)
	}
}

// drainResponse reads a capped response body and closes it.
func drainResponse(resp *http.Response) (int, []byte) {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	return resp.StatusCode, body
}

// retryableStatus reports whether a daemon answer is worth retrying: server
// trouble, not a verdict on the readings. 429 (session budget exhausted) and
// the 4xx rejections are permanent for this session.
func retryableStatus(code int) bool {
	return code >= 500
}

// sleep waits for d or the context, reporting false when the context won.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// nextBackoff doubles the delay up to the cap.
func nextBackoff(cur, max time.Duration) time.Duration {
	cur *= 2
	if cur > max {
		return max
	}
	return cur
}
