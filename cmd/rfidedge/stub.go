package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	rfidclean "repro"
	"repro/internal/dataset"
)

// stubReader is an embedded synthetic RFID reader speaking the go-feig-style
// HTTP API the adapter consumes, for demos, tests, and CI smoke runs without
// hardware. It walks one generated trajectory:
//
//	GET /scan     the next unserved second's inventory (advance-on-read);
//	              {"done": true} once the trajectory is exhausted
//	GET /events/  an eventsource pushing one scan event per interval,
//	              then a terminal done event
//	GET /.status  reader health: served/total counts and uptime
type stubReader struct {
	readings []rfidclean.Reading
	interval time.Duration
	started  time.Time

	mu   sync.Mutex
	next int // next /scan index; /events/ keeps per-connection cursors
}

// newStubReader generates one duration-second trajectory of the named
// dataset and wraps it in a reader.
func newStubReader(name string, duration int, stream uint64, interval time.Duration) (*stubReader, error) {
	cfg, err := dataset.ConfigByName(name)
	if err != nil {
		return nil, err
	}
	if duration <= 0 {
		return nil, fmt.Errorf("stub duration must be positive, got %d", duration)
	}
	d, err := dataset.Build(name, cfg)
	if err != nil {
		return nil, err
	}
	instances, err := d.Generate(duration, 1, stream)
	if err != nil {
		return nil, err
	}
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	return &stubReader{
		readings: instances[0].Readings,
		interval: interval,
		started:  time.Now(),
	}, nil
}

// newStubReaderFor wraps an explicit reading sequence (tests).
func newStubReaderFor(readings []rfidclean.Reading, interval time.Duration) *stubReader {
	if interval <= 0 {
		interval = time.Millisecond
	}
	return &stubReader{readings: readings, interval: interval, started: time.Now()}
}

func (sr *stubReader) total() int { return len(sr.readings) }

func (sr *stubReader) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/scan" && r.Method == http.MethodGet:
		sr.handleScan(w)
	case r.URL.Path == "/events/" && r.Method == http.MethodGet:
		sr.handleEvents(w, r)
	case r.URL.Path == "/.status" && r.Method == http.MethodGet:
		sr.handleStatus(w)
	default:
		http.NotFound(w, r)
	}
}

// report renders reading i as the wire scan report.
func (sr *stubReader) report(i int) scanReport {
	rd := sr.readings[i]
	ids := rd.Readers.IDs()
	if ids == nil {
		ids = []int{} // an empty inventory is still an inventory
	}
	return scanReport{Time: rd.Time, Readers: ids}
}

// handleScan serves the next unserved reading and advances; exhaustion is a
// done report, repeated forever.
func (sr *stubReader) handleScan(w http.ResponseWriter) {
	sr.mu.Lock()
	var rep scanReport
	if sr.next < len(sr.readings) {
		rep = sr.report(sr.next)
		sr.next++
	} else {
		rep = scanReport{Time: -1, Readers: []int{}, Done: true}
	}
	sr.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rep)
}

// handleEvents streams the whole trajectory as SSE scan events on a fixed
// cadence from a per-connection cursor, ending with a done event.
func (sr *stubReader) handleEvents(w http.ResponseWriter, r *http.Request) {
	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	ticker := time.NewTicker(sr.interval)
	defer ticker.Stop()
	for i := 0; ; i++ {
		var payload []byte
		event := "done"
		if i < len(sr.readings) {
			event = "scan"
			payload, _ = json.Marshal(sr.report(i))
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, payload); err != nil {
			return
		}
		rc.Flush()
		if event == "done" {
			return
		}
		select {
		case <-ticker.C:
		case <-r.Context().Done():
			return
		}
	}
}

// handleStatus serves reader health.
func (sr *stubReader) handleStatus(w http.ResponseWriter) {
	sr.mu.Lock()
	served := sr.next
	sr.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"device": "stub-reader",
		"uptime": time.Since(sr.started).Round(time.Millisecond).String(),
		"served": served,
		"total":  len(sr.readings),
	})
}
