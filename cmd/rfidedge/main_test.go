package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	rfidclean "repro"
	"repro/internal/server"
)

// edgeDeployment builds the same small three-room deployment the server
// tests use, serialized for POST /v1/deployments plus its System for
// generating readings.
func edgeDeployment(t *testing.T) ([]byte, *rfidclean.System) {
	t.Helper()
	b := rfidclean.NewMapBuilder()
	cor := b.AddLocation("corridor", rfidclean.Corridor, 0, rfidclean.RectWH(0, 0, 12, 3))
	lab := b.AddLocation("lab", rfidclean.Room, 0, rfidclean.RectWH(0, 3, 6, 5))
	office := b.AddLocation("office", rfidclean.Room, 0, rfidclean.RectWH(6, 3, 6, 5))
	b.AddDoor(cor, lab, rfidclean.Pt(3, 3), 1)
	b.AddDoor(cor, office, rfidclean.Pt(9, 3), 1)
	plan, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dep := &rfidclean.Deployment{
		Name: "edge-test",
		Plan: plan,
		Readers: []rfidclean.Reader{
			{ID: 0, Name: "r-lab", Floor: 0, Pos: rfidclean.Pt(3, 5.5)},
			{ID: 1, Name: "r-office", Floor: 0, Pos: rfidclean.Pt(9, 5.5)},
			{ID: 2, Name: "r-cor", Floor: 0, Pos: rfidclean.Pt(6, 1.5)},
		},
		Detection:          rfidclean.DefaultThreeState(),
		CellSize:           0.5,
		CalibrationSamples: 30,
		Seed:               5,
	}
	var buf bytes.Buffer
	if err := dep.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	sys, err := dep.System()
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), sys
}

// edgeReadings generates a cleanable reading sequence for sys.
func edgeReadings(t *testing.T, sys *rfidclean.System, seed uint64, duration int) []rfidclean.Reading {
	t.Helper()
	rng := rfidclean.NewRNG(seed)
	truth, err := rfidclean.GenerateTrajectory(sys.Plan, rfidclean.NewGeneratorConfig(duration), rng)
	if err != nil {
		t.Fatal(err)
	}
	return rfidclean.GenerateReadings(truth, sys.Truth, rng)
}

// newDaemon boots an in-process rfidcleand, registers the test deployment,
// and returns the base URL and deployment id.
func newDaemon(t *testing.T) (string, string, *rfidclean.System) {
	t.Helper()
	depJSON, sys := edgeDeployment(t)
	ts := httptest.NewServer(server.New())
	t.Cleanup(ts.Close)
	resp, err := http.Post(ts.URL+"/v1/deployments", "application/json", bytes.NewReader(depJSON))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("deployment POST: %d: %s", resp.StatusCode, body)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &created); err != nil || created.ID == "" {
		t.Fatalf("deployment POST: undecodable %q", body)
	}
	return ts.URL, created.ID, sys
}

// startStub serves readings over the stub reader API and returns its URL.
func startStub(t *testing.T, readings []rfidclean.Reading, interval time.Duration) string {
	t.Helper()
	ts := httptest.NewServer(newStubReaderFor(readings, interval))
	t.Cleanup(ts.Close)
	return ts.URL
}

// edgeConfig returns a fast-test baseline config against the given daemon,
// deployment, and reader.
func edgeConfig(daemon, depID, reader string) config {
	return config{
		daemon:      daemon,
		reader:      reader,
		deployment:  depID,
		maxSpeed:    2,
		minStay:     5,
		mode:        "poll",
		poll:        time.Millisecond,
		batch:       7,
		flushEvery:  20 * time.Millisecond,
		closeOnExit: true,
		backoffMin:  time.Millisecond,
		backoffMax:  20 * time.Millisecond,
		maxAttempts: 20,
	}
}

// assertTrajectory checks that exactly one stored trajectory covers all
// duration timestamps — the proof that every stub reading reached a session
// and survived the final smooth.
func assertTrajectory(t *testing.T, base string, duration int) {
	t.Helper()
	resp, err := http.Get(base + "/v1/trajectories")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var list []struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("trajectory list: %v (%s)", err, body)
	}
	if len(list) != 1 {
		t.Fatalf("want 1 stored trajectory, got %d (%s)", len(list), body)
	}
	id := list[0].ID
	stay, err := http.Get(fmt.Sprintf("%s/v1/trajectories/%s/stay?t=%d", base, id, duration-1))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, stay.Body)
	stay.Body.Close()
	if stay.StatusCode != http.StatusOK {
		t.Fatalf("stay query at t=%d on %s: %d (trajectory does not cover the full feed)", duration-1, id, stay.StatusCode)
	}
}

func TestEdgePollEndToEnd(t *testing.T) {
	base, depID, sys := newDaemon(t)
	readings := edgeReadings(t, sys, 11, 40)
	cfg := edgeConfig(base, depID, startStub(t, readings, time.Millisecond))
	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	assertTrajectory(t, base, len(readings))
}

func TestEdgeEventsMode(t *testing.T) {
	base, depID, sys := newDaemon(t)
	readings := edgeReadings(t, sys, 12, 40)
	cfg := edgeConfig(base, depID, startStub(t, readings, time.Millisecond))
	cfg.mode = "events"
	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	assertTrajectory(t, base, len(readings))
}

func TestEdgeBinaryCodec(t *testing.T) {
	base, depID, sys := newDaemon(t)
	readings := edgeReadings(t, sys, 13, 40)
	cfg := edgeConfig(base, depID, startStub(t, readings, time.Millisecond))
	cfg.binary = true
	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	assertTrajectory(t, base, len(readings))
}

// TestEdgeReopensOn410 reaps the session out from under a running edge and
// checks that it re-opens a fresh one and replays the full history: the
// final trajectory must cover every reading, including those fed before the
// kill.
func TestEdgeReopensOn410(t *testing.T) {
	base, depID, sys := newDaemon(t)
	readings := edgeReadings(t, sys, 14, 60)
	cfg := edgeConfig(base, depID, startStub(t, readings, 3*time.Millisecond))
	cfg.poll = 3 * time.Millisecond
	cfg.batch = 5

	// Once the first session has accepted a couple of batches, close it
	// server-side without smoothing — the edge's next POST answers 410.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		for i := 0; i < 2000; i++ {
			var st server.StreamStatus
			resp, err := http.Get(base + "/v1/stream/s1")
			if err != nil {
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK && json.Unmarshal(body, &st) == nil && st.Readings >= 10 {
				req, _ := http.NewRequest(http.MethodDelete, base+"/v1/stream/s1?smooth=no", nil)
				resp, err := http.DefaultClient.Do(req)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	<-killed
	// s1 was closed with smoothing skipped, so the only stored trajectory is
	// the re-opened session's — and it must cover the entire feed.
	assertTrajectory(t, base, len(readings))
}

// TestEdgeRetriesOn503 drops a flaky proxy between edge and daemon that
// fails the first few readings POSTs; the edge must back off and deliver.
func TestEdgeRetriesOn503(t *testing.T) {
	base, depID, sys := newDaemon(t)
	var failures atomic.Int32
	failures.Store(3)
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && failures.Add(-1) >= 0 {
			http.Error(w, "transient", http.StatusServiceUnavailable)
			return
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, base+r.URL.RequestURI(), r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		req.Header = r.Header.Clone()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}))
	t.Cleanup(proxy.Close)

	readings := edgeReadings(t, sys, 15, 40)
	cfg := edgeConfig(proxy.URL, depID, startStub(t, readings, time.Millisecond))
	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if failures.Load() >= 0 {
		t.Fatalf("proxy never exhausted its induced failures (%d left)", failures.Load())
	}
	assertTrajectory(t, base, len(readings))
}

// TestEdgeGivesUpAfterMaxAttempts checks the retry budget is a budget.
func TestEdgeGivesUpAfterMaxAttempts(t *testing.T) {
	var posts atomic.Int32
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/stream" {
			posts.Add(1)
		}
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	t.Cleanup(down.Close)
	cfg := edgeConfig(down.URL, "d1", startStub(t, nil, time.Millisecond))
	cfg.maxAttempts = 3
	if err := run(context.Background(), cfg); err == nil {
		t.Fatal("run succeeded against a daemon that only answers 503")
	}
	if got := posts.Load(); got != 3 {
		t.Fatalf("open session tried %d times, want 3", got)
	}
}

// TestStubReader exercises the embedded reader API directly: advance-on-read
// /scan, a done report on exhaustion, and /.status accounting.
func TestStubReader(t *testing.T) {
	readings := []rfidclean.Reading{
		{Time: 0, Readers: rfidclean.NewReaderSet(1)},
		{Time: 1, Readers: rfidclean.NewReaderSet()},
	}
	ts := httptest.NewServer(newStubReaderFor(readings, time.Millisecond))
	t.Cleanup(ts.Close)
	scan := func() scanReport {
		t.Helper()
		resp, err := http.Get(ts.URL + "/scan")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rep scanReport
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatal(err)
		}
		return rep
	}
	if rep := scan(); rep.Time != 0 || len(rep.Readers) != 1 || rep.Readers[0] != 1 {
		t.Fatalf("first scan = %+v", rep)
	}
	if rep := scan(); rep.Time != 1 || len(rep.Readers) != 0 || rep.Done {
		t.Fatalf("second scan = %+v", rep)
	}
	if rep := scan(); !rep.Done {
		t.Fatalf("exhausted scan = %+v, want done", rep)
	}
	resp, err := http.Get(ts.URL + "/.status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Served int `json:"served"`
		Total  int `json:"total"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Served != 2 || st.Total != 2 {
		t.Fatalf("status = %+v, want served=2 total=2", st)
	}
}
